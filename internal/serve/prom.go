package serve

import (
	"io"
	"runtime"
	"time"

	"popnaming/internal/obs"
)

// renderPrometheus writes every service metric — the obs counters,
// gauges and histograms behind the human-readable tables — in
// Prometheus text exposition format 0.0.4, plus Go runtime gauges
// (goroutines, heap, GC), for GET /metrics?format=prometheus. The
// exposition is conformance-tested in prom_test.go.
func (s *Server) renderPrometheus(w io.Writer) {
	m := s.met

	s.mu.Lock()
	depth := len(s.queue)
	draining := s.draining
	byState := make(map[JobState]int)
	for _, j := range s.order {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	ready, _ := s.Ready()

	b01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	p := obs.NewPromWriter(w)

	p.Gauge("ppserved_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())
	p.Gauge("ppserved_workers", "Configured job worker pool size.", float64(s.cfg.Workers))
	p.Gauge("ppserved_workers_active", "Workers currently executing a job.", float64(m.activeWorkers()))
	p.Gauge("ppserved_queue_depth", "Jobs waiting in the admission queue.", float64(depth))
	p.Gauge("ppserved_queue_capacity", "Admission queue capacity.", float64(s.cfg.QueueCap))
	p.Gauge("ppserved_queue_high_watermark", "Queue depth at which /readyz turns unready.", float64(s.cfg.HighWater))
	p.Gauge("ppserved_draining", "1 while the server is draining, else 0.", b01(draining))
	p.Gauge("ppserved_ready", "1 while /readyz answers 200, else 0.", b01(ready))

	p.Counter("ppserved_jobs_submitted_total", "Jobs admitted to the queue.", m.submitted.Value())
	p.Counter("ppserved_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected.Value())
	p.Counter("ppserved_jobs_completed_total", "Jobs that reached state done.", m.completed.Value())
	p.Counter("ppserved_jobs_failed_total", "Jobs that reached state failed.", m.failed.Value())
	p.Counter("ppserved_jobs_canceled_total", "Jobs that reached state canceled.", m.canceled.Value())
	p.Counter("ppserved_spans_total", "Trace span records emitted into result streams.", m.spans.Value())

	entries, bytes := s.cache.stats()
	p.Family("ppserved_store_info", "gauge", "Job store implementation in use (value is always 1).")
	p.Sample("ppserved_store_info", []obs.PromLabel{{Name: "kind", Value: s.store.Kind()}}, 1)
	p.Counter("ppserved_jobs_restored_total", "Terminal jobs restored from the store at boot.", m.restored.Value())
	p.Counter("ppserved_jobs_requeued_total", "Interrupted jobs re-queued from the store at boot.", m.requeued.Value())
	p.Gauge("ppserved_cache_entries", "Result-cache entries resident.", float64(entries))
	p.Gauge("ppserved_cache_bytes", "Result-cache resident bytes.", float64(bytes))
	p.Gauge("ppserved_cache_capacity_bytes", "Result-cache byte budget (0 when disabled).", float64(s.cacheCapacity()))
	p.Counter("ppserved_cache_hits_total", "Submissions served from the result cache without re-simulation.", m.cacheHits.Value())
	p.Counter("ppserved_cache_misses_total", "Submissions that missed the result cache.", m.cacheMisses.Value())
	p.Counter("ppserved_cache_evictions_total", "Result-cache entries evicted by the byte budget.", m.cacheEvictions.Value())
	p.Counter("ppserved_buffer_spills_total", "Live result-buffer spills to the job store.", m.bufSpills.Value())
	p.Counter("ppserved_buffer_spilled_bytes_total", "Bytes spilled from live result buffers to the job store.", m.bufSpilledBytes.Value())
	p.Counter("ppserved_late_emits_total", "Records emitted into a result buffer after job finalization (worker bugs).", m.lateEmits.Value())
	p.Counter("ppserved_store_write_errors_total", "Failed writes to the job store (spills, finalization, lease records).", m.storeWriteErrors.Value())
	p.Counter("ppserved_stream_write_timeouts_total", "Result streams disconnected by the per-write deadline (stalled clients).", m.streamWriteTimeouts.Value())

	p.Gauge("ppserved_dist_peers", "Configured peer ppserved nodes for sharded execution.", float64(len(s.peers)))
	p.Counter("ppserved_dist_leases_issued_total", "Lease attempts issued to executors (first issues and re-issues).", m.leasesIssued.Value())
	p.Counter("ppserved_dist_leases_reissued_total", "Lease re-issues after a failed attempt.", m.leasesReissued.Value())
	p.Counter("ppserved_dist_leases_completed_total", "Leases whose shard was accepted and merged.", m.leasesCompleted.Value())
	p.Counter("ppserved_dist_leases_duplicate_total", "Late duplicate shards discarded by lease epoch.", m.leasesDuplicate.Value())
	p.Counter("ppserved_dist_leases_restored_total", "Completed shards restored from the store across a restart.", m.leasesRestored.Value())
	p.Counter("ppserved_dist_lease_failures_total", "Lease attempts ended by timeout, error status or connection loss.", m.leaseFailures.Value())

	p.Family("ppserved_jobs", "gauge", "Jobs currently known to the server, by lifecycle state.")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		p.Sample("ppserved_jobs", []obs.PromLabel{{Name: "state", Value: string(st)}}, float64(byState[st]))
	}

	p.Family("ppserved_job_wall_milliseconds", "histogram", "Wall-clock time of finished jobs.")
	p.Histogram("ppserved_job_wall_milliseconds", nil, m.jobWallMS.Snapshot())

	p.Family("ppserved_job_queue_wait_microseconds", "histogram", "Queue wait (admission to execution start) by job kind.")
	for _, k := range m.kindOrder {
		p.Histogram("ppserved_job_queue_wait_microseconds", []obs.PromLabel{{Name: "kind", Value: k}}, m.kinds[k].queueWaitUS.Snapshot())
	}
	p.Family("ppserved_job_exec_milliseconds", "histogram", "Execution wall clock by job kind.")
	for _, k := range m.kindOrder {
		p.Histogram("ppserved_job_exec_milliseconds", []obs.PromLabel{{Name: "kind", Value: k}}, m.kinds[k].execMS.Snapshot())
	}
	p.Family("ppserved_job_stream_milliseconds", "histogram", "Result-stream connection time by job kind.")
	for _, k := range m.kindOrder {
		p.Histogram("ppserved_job_stream_milliseconds", []obs.PromLabel{{Name: "kind", Value: k}}, m.kinds[k].streamMS.Snapshot())
	}

	p.Family("ppserved_http_requests_total", "counter", "Handled HTTP requests by route.")
	for _, route := range m.routeOrder {
		p.Sample("ppserved_http_requests_total", []obs.PromLabel{{Name: "route", Value: route}}, float64(m.routes[route].reqs.Value()))
	}
	p.Family("ppserved_http_request_latency_microseconds", "histogram", "HTTP request latency by route.")
	for _, route := range m.routeOrder {
		p.Histogram("ppserved_http_request_latency_microseconds", []obs.PromLabel{{Name: "route", Value: route}}, m.routes[route].latUS.Snapshot())
	}

	p.Counter("ppserved_trials_total", "Simulation trials run across all jobs.", m.trialsRun.Value())
	p.Counter("ppserved_trials_converged_total", "Trials that reached silence within budget.", m.trialsConverged.Value())
	p.Counter("ppserved_interactions_total", "Scheduled interactions across all trials.", m.trialSteps.Value())
	p.Counter("ppserved_interactions_non_null_total", "State-changing interactions across all trials.", m.trialNonNull.Value())

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	p.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	p.Gauge("go_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	p.Counter("go_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
	p.Family("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	p.Sample("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
}
