package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"popnaming/internal/obs"
)

// runTraced submits a spec, streams it to completion and returns the
// terminal view plus the stream lines.
func runTraced(t *testing.T, ts *httptest.Server, spec Spec) (JobView, [][]byte) {
	t.Helper()
	status, view, _, _ := postJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	lines := streamLines(t, ts, view.ID)
	final := waitState(t, ts, view.ID, StateDone, 60*time.Second)
	return final, lines
}

// spanRecs decodes the span records of a stream, in order.
func spanRecs(t *testing.T, lines [][]byte) []obs.SpanRec {
	t.Helper()
	var spans []obs.SpanRec
	for _, line := range lines {
		if recType(t, line) != "span" {
			continue
		}
		var rec obs.SpanRec
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, rec)
	}
	return spans
}

// TestTracedJobDeterminism pins the tentpole's service-level contract:
// the same seeded job submitted twice yields byte-identical span trees
// — IDs included — modulo the wall-clock fields. Only the "job"
// lifecycle records (which carry the per-submission job ID) differ.
func TestTracedJobDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	spec := Spec{
		Kind: KindBatch, Protocol: "asym", P: 4, N: 4,
		Seed: 7, Trials: 3, Workers: 1, Budget: 200_000, Trace: true,
	}
	viewA, linesA := runTraced(t, ts, spec)
	viewB, linesB := runTraced(t, ts, spec)

	wantTrace := obs.NewTraceID(7).String()
	if viewA.Trace != wantTrace || viewB.Trace != wantTrace {
		t.Fatalf("view trace IDs %q/%q, want %q", viewA.Trace, viewB.Trace, wantTrace)
	}

	canon := func(lines [][]byte) []string {
		var out []string
		for _, line := range lines {
			if recType(t, line) == "job" {
				continue // carries the per-submission job ID
			}
			out = append(out, canonicalize(t, line))
		}
		return out
	}
	a, b := canon(linesA), canon(linesB)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across same-seed runs:\nfirst:  %s\nsecond: %s", i, a[i], b[i])
		}
	}

	// The stream opens header, then the sealed queue span, and closes
	// root span, then terminal job record.
	if recType(t, linesA[0]) != "header" {
		t.Fatalf("first record %q, want header", recType(t, linesA[0]))
	}
	spans := spanRecs(t, linesA)
	if len(spans) == 0 {
		t.Fatal("traced stream has no span records")
	}
	if spans[0].Name != "queue" {
		t.Fatalf("first span %q, want queue", spans[0].Name)
	}
	if recType(t, linesA[1]) != "span" {
		t.Fatalf("second record %q, want the queue span", recType(t, linesA[1]))
	}
	last := linesA[len(linesA)-1]
	if recType(t, last) != "job" {
		t.Fatalf("last record %q, want job", recType(t, last))
	}
	if prev := linesA[len(linesA)-2]; recType(t, prev) != "span" {
		t.Fatalf("second-to-last record %q, want the root span", recType(t, prev))
	} else if spans[len(spans)-1].Name != "job" {
		t.Fatalf("final span %q, want job", spans[len(spans)-1].Name)
	}

	// The header and the terminal job record both carry the trace ID.
	var hdr obs.Header
	if err := json.Unmarshal(linesA[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Trace != wantTrace {
		t.Fatalf("header trace %q, want %q", hdr.Trace, wantTrace)
	}
	var term JobRec
	if err := json.Unmarshal(last, &term); err != nil {
		t.Fatal(err)
	}
	if term.Trace != wantTrace {
		t.Fatalf("terminal job record trace %q, want %q", term.Trace, wantTrace)
	}
	if term.QueueWaitNS <= 0 {
		t.Fatalf("terminal job record queueWaitNs %d, want > 0", term.QueueWaitNS)
	}

	// Every trace ID matches and every parent resolves to an emitted
	// span (the roots have none).
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		ids[sp.Span] = true
	}
	for _, sp := range spans {
		if sp.Trace != wantTrace {
			t.Fatalf("span %s trace %q, want %q", sp.Span, sp.Trace, wantTrace)
		}
		if sp.Parent != "" && !ids[sp.Parent] {
			t.Fatalf("span %s (%s) has unresolved parent %q", sp.Span, sp.Name, sp.Parent)
		}
	}

	// An untraced job emits no spans and no trace IDs — tracing is
	// strictly opt-in (TestJobDeterminism depends on it).
	untraced := spec
	untraced.Trace = false
	viewC, linesC := runTraced(t, ts, untraced)
	if viewC.Trace != "" {
		t.Fatalf("untraced view trace %q", viewC.Trace)
	}
	if n := len(spanRecs(t, linesC)); n != 0 {
		t.Fatalf("untraced stream has %d span records", n)
	}
}

// TestTracedSimSpanTree pins the span-tree shape of a traced sim job
// with fault injection: job -> queue plus job -> attempt -> slice, the
// injected fault surfacing as an event on the attempt span.
func TestTracedSimSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	spec := Spec{
		Kind: KindSim, Protocol: "asym", P: 4, N: 4,
		Seed: 5, Budget: 200_000, Faults: "@1000:corrupt=1", Trace: true,
	}
	_, lines := runTraced(t, ts, spec)
	spans := spanRecs(t, lines)

	byName := make(map[string][]obs.SpanRec)
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	if len(byName["job"]) != 1 || len(byName["queue"]) != 1 {
		t.Fatalf("want exactly one job and one queue span, got %d/%d", len(byName["job"]), len(byName["queue"]))
	}
	if len(byName["attempt"]) < 1 || len(byName["slice"]) < 1 {
		t.Fatalf("want attempt and slice spans, got %d/%d", len(byName["attempt"]), len(byName["slice"]))
	}
	root, queue := byName["job"][0], byName["queue"][0]
	if root.Parent != "" {
		t.Fatalf("job span has parent %q", root.Parent)
	}
	if queue.Parent != root.Span {
		t.Fatalf("queue span parent %q, want job span %q", queue.Parent, root.Span)
	}
	attemptIDs := make(map[string]bool)
	for _, sp := range byName["attempt"] {
		if sp.Parent != root.Span {
			t.Fatalf("attempt span parent %q, want job span %q", sp.Parent, root.Span)
		}
		attemptIDs[sp.Span] = true
	}
	for _, sp := range byName["slice"] {
		if !attemptIDs[sp.Parent] {
			t.Fatalf("slice span parent %q is not an attempt span", sp.Parent)
		}
	}
	var fired []obs.SpanEvent
	for _, sp := range byName["attempt"] {
		fired = append(fired, sp.Events...)
	}
	if len(fired) != 1 || fired[0].Name != "corrupt" || fired[0].Step < 1000 {
		t.Fatalf("attempt span events %+v, want one corrupt at step >= 1000", fired)
	}
	if root.QueueWaitNS <= 0 {
		t.Fatalf("root span queueWaitNs %d, want > 0", root.QueueWaitNS)
	}
}
