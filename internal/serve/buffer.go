package serve

import (
	"encoding/json"
	"sync"
)

// buffer is a job's append-only NDJSON result log. The worker running
// the job emits journal records into it (it implements obs.Sink) while
// any number of HTTP streams read it concurrently; a stream that
// reaches the end blocks on the condition variable until more lines
// arrive or the buffer closes, so followers see records as the run
// produces them and get EOF exactly when the job is finalized.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  [][]byte
	closed bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Emit implements obs.Sink: one marshaled record per line. Emits after
// close are dropped (the job was finalized; nothing should follow).
func (b *buffer) Emit(rec any) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	b.mu.Lock()
	if !b.closed {
		b.lines = append(b.lines, line)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	return nil
}

// close marks the stream complete and wakes every waiting reader.
func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// len returns the number of buffered lines.
func (b *buffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines)
}

// wait blocks until lines beyond index i exist, the buffer closes, or
// canceled reports true, and returns the new lines plus the closed
// flag. Line slices are append-only and never mutated after Emit, so
// the returned views are safe to write without holding the lock.
// Cancellation is polled only at wake-ups: arrange for wake (e.g. via
// context.AfterFunc) when canceled can turn true.
func (b *buffer) wait(i int, canceled func() bool) ([][]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.lines) <= i && !b.closed && !canceled() {
		b.cond.Wait()
	}
	var lines [][]byte
	if len(b.lines) > i {
		lines = b.lines[i:]
	}
	return lines, b.closed
}

// wake nudges every waiting reader to re-check its cancellation.
func (b *buffer) wake() {
	b.cond.Broadcast()
}
