package serve

import (
	"encoding/json"
	"errors"
	"sync"
)

// ErrLateEmit is returned by buffer.Emit after finalize: the job was
// sealed, its terminal record written, and nothing may follow. A late
// emit is a worker bug — the error (and the late_emits metric the
// buffer's late hook feeds) makes it detectable instead of silent.
var ErrLateEmit = errors.New("serve: emit after job finalization")

// buffer is a job's append-only NDJSON result log. The worker running
// the job emits journal records into it (it implements obs.Sink) while
// any number of HTTP streams read it concurrently; a stream that
// reaches the end blocks on the condition variable until more lines
// arrive or the buffer closes, so followers see records as the run
// produces them and get EOF exactly when the job is finalized.
//
// Lines live in RAM only up to maxBytes: past the cap the in-RAM tail
// is spilled to the job store and readers fetch the spilled prefix
// back on demand, so a long traced campaign no longer pins its whole
// journal in memory. finalize spills everything, leaving terminal jobs
// at near-zero resident cost. Logical line indexes are stable across
// spills: [0, start) is in the store, [start, start+len(lines)) in RAM.
type buffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	lines    [][]byte // in-RAM tail; logical index of lines[0] is start
	start    int      // lines below this logical index are in the store
	memBytes int64
	maxBytes int64 // live-RAM cap; <= 0 means no cap (never spill early)
	closed   bool

	// Store wiring, set at construction and immutable: spill appends
	// lines to the job's durable result log, fetch reads logical lines
	// [from, to) back, late observes emits after finalization. Any may
	// be nil (spill nil: the buffer keeps everything in RAM, the
	// pre-store behavior).
	spill func(lines [][]byte) error
	fetch func(from, to int) ([][]byte, error)
	late  func()

	// storeErr retains the first spill failure. Workload sinks ignore
	// per-emit errors (obs.Sink's contract tolerates lossy sinks), so
	// runJob checks this after execution and fails the job with a
	// structured store error instead of finishing as done with records
	// silently stuck in RAM.
	storeErr error
}

func newBuffer(maxBytes int64, spill func([][]byte) error, fetch func(from, to int) ([][]byte, error), late func()) *buffer {
	b := &buffer{maxBytes: maxBytes, spill: spill, fetch: fetch, late: late}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// restore marks the buffer as a finalized log of total lines that live
// entirely in the store (a job recovered at boot): reads go through
// fetch, writes are late emits.
func (b *buffer) restore(total int) {
	b.mu.Lock()
	b.start = total
	b.closed = true
	b.mu.Unlock()
}

// Emit implements obs.Sink: one marshaled record per line. Emits after
// finalize return ErrLateEmit. When the in-RAM tail exceeds maxBytes
// the whole tail is spilled to the store; a spill failure (e.g. disk
// full) keeps the lines in RAM — degraded but lossless — and surfaces
// the error.
func (b *buffer) Emit(rec any) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		if b.late != nil {
			b.late()
		}
		return ErrLateEmit
	}
	b.lines = append(b.lines, line)
	b.memBytes += int64(len(line))
	var spillErr error
	if b.spill != nil && b.maxBytes > 0 && b.memBytes > b.maxBytes {
		spillErr = b.spillLocked()
		if spillErr != nil && b.storeErr == nil {
			b.storeErr = spillErr
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	return spillErr
}

// storeFailure returns the first spill error, if any.
func (b *buffer) storeFailure() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.storeErr
}

// appendRaw appends pre-marshaled, newline-terminated lines (a cache
// hit replaying a prior job's stream). Lines must never be mutated
// afterwards.
func (b *buffer) appendRaw(lines [][]byte) {
	b.mu.Lock()
	for _, line := range lines {
		b.lines = append(b.lines, line)
		b.memBytes += int64(len(line))
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// spillLocked moves the whole in-RAM tail to the store; callers hold
// b.mu.
func (b *buffer) spillLocked() error {
	if err := b.spill(b.lines); err != nil {
		return err
	}
	b.start += len(b.lines)
	b.lines = nil
	b.memBytes = 0
	return nil
}

// finalize marks the stream complete, spills any in-RAM tail to the
// store and wakes every waiting reader. After finalize the buffer
// holds no line data (when spill is wired); len and wait still serve
// the full logical log through fetch.
func (b *buffer) finalize() error {
	b.mu.Lock()
	b.closed = true
	var err error
	if b.spill != nil && len(b.lines) > 0 {
		err = b.spillLocked()
		if err != nil && b.storeErr == nil {
			b.storeErr = err
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	return err
}

// len returns the number of logical lines (in store + in RAM).
func (b *buffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.start + len(b.lines)
}

// wait blocks until lines beyond logical index i exist, the buffer
// closes, or canceled reports true, and returns the lines from i on
// plus the closed flag. A prefix already spilled to the store is
// fetched back outside the lock (the store's logs are append-only, so
// the read is stable). Line slices are append-only and never mutated
// after Emit, so the returned views are safe to write without the
// lock. Cancellation is polled only at wake-ups: arrange for wake
// (e.g. via context.AfterFunc) when canceled can turn true.
func (b *buffer) wait(i int, canceled func() bool) ([][]byte, bool, error) {
	b.mu.Lock()
	for b.start+len(b.lines) <= i && !b.closed && !canceled() {
		b.cond.Wait()
	}
	closed := b.closed
	if i >= b.start {
		var lines [][]byte
		if b.start+len(b.lines) > i {
			lines = b.lines[i-b.start:]
		}
		b.mu.Unlock()
		return lines, closed, nil
	}
	spilled := b.start
	ram := append([][]byte(nil), b.lines...)
	b.mu.Unlock()
	if b.fetch == nil {
		return nil, closed, errors.New("serve: buffer lines spilled with no fetch wired")
	}
	fetched, err := b.fetch(i, spilled)
	if err != nil {
		return nil, closed, err
	}
	return append(fetched, ram...), closed, nil
}

// all returns the complete logical log (store prefix + RAM tail).
func (b *buffer) all() ([][]byte, error) {
	lines, _, err := b.wait(0, func() bool { return true })
	return lines, err
}

// wake nudges every waiting reader to re-check its cancellation.
func (b *buffer) wake() {
	b.cond.Broadcast()
}
