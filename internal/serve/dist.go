package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"popnaming/internal/dist"
	"popnaming/internal/obs"
	"popnaming/internal/serve/store"
	"popnaming/internal/sim"
)

// This file is the serving half of distributed batch execution: it
// decides which jobs shard (distEligible), drives the internal/dist
// coordinator for them (runDistBatch), supplies the coordinator's
// local executor (a range run into a private line sink) and its
// persistence hooks (lease records and shard logs into the job
// store), and rebuilds restored shards after a coordinator restart.

// distEligible reports whether a job runs through the dist
// coordinator. Only untraced batch jobs shard: traced jobs keep their
// single-node span tree (spans interleave with workload records in
// ways a merge cannot reproduce byte-identically), shard jobs
// (Spec.Shard set) are the peer side of the protocol and always
// execute locally, and sim/campaign/table1 jobs have no trial range
// to split.
func (s *Server) distEligible(j *Job) bool {
	sp := j.v.spec
	return len(s.peers) > 0 && sp.Kind == KindBatch && sp.Shard == nil && !sp.Trace
}

// shardSpec renders the submission body for one lease: the job's
// validated spec with the shard range set and tracing stripped. The
// seed is the resolved one, so the peer derives exactly the trial
// seeds this node would.
func (j *Job) shardSpec(r dist.Range) ([]byte, error) {
	sp := j.v.spec // copy
	sp.Shard = &ShardRange{Lo: r.Lo, Hi: r.Hi}
	sp.Trace = false
	return json.Marshal(sp)
}

// jobPeer adapts a server-lifetime dist.Peer (persistent health and
// quarantine state) to one job's executor: Run renders this job's
// shard body, everything else delegates.
type jobPeer struct {
	p *dist.Peer
	j *Job
}

func (jp *jobPeer) Name() string                   { return jp.p.Name() }
func (jp *jobPeer) Ready(ctx context.Context) bool { return jp.p.Ready(ctx) }
func (jp *jobPeer) Observe(ok bool)                { jp.p.Observe(ok) }
func (jp *jobPeer) Run(ctx context.Context, r dist.Range) ([][]byte, error) {
	body, err := jp.j.shardSpec(r)
	if err != nil {
		return nil, fmt.Errorf("dist: shard body: %w", err)
	}
	return jp.p.RunBody(ctx, r, body)
}

// lineSink collects marshaled journal records as newline-terminated
// raw lines — the same bytes buffer.Emit would produce — so a local
// shard run yields a stream normalizeShard can merge byte-identically.
type lineSink struct {
	mu    sync.Mutex
	lines [][]byte
}

func (ls *lineSink) Emit(rec any) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	ls.mu.Lock()
	ls.lines = append(ls.lines, append(b, '\n'))
	ls.mu.Unlock()
	return nil
}

func (ls *lineSink) take() [][]byte {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	lines := ls.lines
	ls.lines = nil
	return lines
}

// runShardLocal executes one lease in-process: the same range runners
// the peer side uses, into a private sink instead of the job buffer.
// A canceled run is an error — its summary covers fewer trials than
// the lease and must never be accepted as a completed shard.
func (s *Server) runShardLocal(j *Job, ctx context.Context, r dist.Range) ([][]byte, error) {
	sp := j.v.spec
	sink := &lineSink{}
	bo := sim.BatchObs{Sink: sink, ProgressEvery: sp.ProgressEvery}
	if sp.Engine == "count" {
		sim.RunCountBatchRange(ctx, j.v.proto, r.Lo, r.Hi, sp.Budget, sp.Workers, bo, countTrialMaker(j.v))
	} else {
		sup := j.supervision()
		sup.Sink = sink
		sim.RunBatchRangeSupervised(ctx, j.v.proto, r.Lo, r.Hi, sp.Workers, sup, bo, batchTrialMaker(j.v))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sink.take(), nil
}

// leaseTimeout bounds one peer attempt. With enough execution history
// for this kind it adapts — about 4x the mean batch wall clock,
// clamped to [5s, LeaseTimeout] — so a wedged peer is detected in
// proportion to how long work actually takes; with a cold histogram
// it falls back to the configured ceiling.
func (s *Server) leaseTimeout(r dist.Range) time.Duration {
	max := s.cfg.LeaseTimeout
	km := s.met.kind(KindBatch)
	if km == nil {
		return max
	}
	snap := km.execMS.Snapshot()
	if snap.Count < 3 {
		return max
	}
	d := time.Duration(4*snap.Mean) * time.Millisecond
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// journalLease is the coordinator's Journal hook: counters, a v1
// lease record into the service journal, and persistence. Completed
// shards write their log before the lease record, so a crash between
// the two re-issues the lease rather than restoring a missing shard;
// a store write failure downgrades to the metrics counter — the job
// still completes from RAM, durability is just lost for this lease.
func (s *Server) journalLease(j *Job, ev dist.Event) {
	switch ev.State {
	case dist.StateIssued:
		s.met.leasesIssued.Inc()
	case dist.StateReissued:
		s.met.leasesIssued.Inc()
		s.met.leasesReissued.Inc()
	case dist.StateFailed:
		s.met.leaseFailures.Inc()
	case dist.StateCompleted:
		s.met.leasesCompleted.Inc()
	case dist.StateDuplicate:
		s.met.leasesDuplicate.Inc()
	case dist.StateRestored:
		s.met.leasesRestored.Inc()
	}
	_ = s.sink.Emit(obs.NewLeaseRec(j.ID, ev.Lease, ev.Range.Lo, ev.Range.Hi, ev.Epoch, ev.State, ev.Peer, ev.Reason))
	snap := store.LeaseSnap{Idx: ev.Lease, Lo: ev.Range.Lo, Hi: ev.Range.Hi,
		Epoch: ev.Epoch, State: store.LeaseIssued, Peer: ev.Peer}
	switch ev.State {
	case dist.StateIssued, dist.StateReissued:
		if err := s.store.PutLease(j.ID, snap); err != nil {
			s.met.storeWriteErrors.Inc()
		}
	case dist.StateCompleted:
		if err := s.store.PutShard(j.ID, ev.Lease, ev.Shard); err != nil {
			s.met.storeWriteErrors.Inc()
			return
		}
		snap.State = store.LeaseCompleted
		snap.Lines = ev.Lines
		if err := s.store.PutLease(j.ID, snap); err != nil {
			s.met.storeWriteErrors.Inc()
		}
	}
}

// restoredShards rebuilds the coordinator's Restored map from the
// lease snapshots a previous incarnation journaled. A snapshot only
// counts when its range matches the current plan (a changed
// -lease-trials re-plans the batch; stale ranges re-execute) and its
// shard log reads back whole.
func (s *Server) restoredShards(j *Job, plan []dist.Range) map[int][][]byte {
	if len(j.restoredLeases) == 0 {
		return nil
	}
	restored := make(map[int][][]byte)
	for _, l := range j.restoredLeases {
		if l.State != store.LeaseCompleted || l.Idx < 0 || l.Idx >= len(plan) {
			continue
		}
		if plan[l.Idx].Lo != l.Lo || plan[l.Idx].Hi != l.Hi {
			continue
		}
		lines, err := s.store.ReadShard(j.ID, l.Idx, l.Lines)
		if err != nil {
			continue
		}
		restored[l.Idx] = lines
	}
	return restored
}

// runDistBatch executes an untraced batch job through the dist
// coordinator: the trial range splits into leases, leases run on peer
// nodes and the local engine, and completed shards merge back into
// the job buffer strictly in trial order, so the assembled stream is
// byte-identical to a 1-node run modulo wall-clock fields.
func (s *Server) runDistBatch(j *Job) error {
	sp := j.v.spec
	start := time.Now()
	plan := dist.Plan(sp.Trials, s.cfg.LeaseTrials)

	var sums []obs.BatchSummaryRec
	peers := make([]dist.Executor, len(s.peers))
	for i, p := range s.peers {
		peers[i] = &jobPeer{p: p, j: j}
	}
	co := &dist.Coordinator{
		Job:  j.ID,
		Seed: sp.Seed,
		Local: func(ctx context.Context, r dist.Range) ([][]byte, error) {
			return s.runShardLocal(j, ctx, r)
		},
		Peers:   peers,
		Timeout: s.leaseTimeout,
		Retries: s.cfg.DistRetries,
		Journal: func(ev dist.Event) { s.journalLease(j, ev) },
		Deliver: func(lease int, r dist.Range, lines [][]byte, sum obs.BatchSummaryRec) {
			j.buf.appendRaw(lines)
			sums = append(sums, sum)
		},
		Restored: s.restoredShards(j, plan),
	}
	if err := co.Run(j.ctx, plan); err != nil {
		if j.ctx.Err() != nil {
			return nil // runJob records the cancellation
		}
		return err
	}

	merged := dist.MergeSummaries(sums, sp.Workers, sp.Trials, time.Since(start).Nanoseconds(), 0)
	if err := j.buf.Emit(merged); err != nil {
		return err
	}
	j.setSummary(&JobSummary{
		Trials:          merged.Trials,
		TrialsConverged: merged.Converged,
		Aborted:         merged.Aborted,
		Retried:         merged.Retried,
		Steps:           merged.TotalSteps,
		NonNull:         merged.TotalNonNull,
		OK:              merged.Converged == merged.Trials,
	})
	s.met.trialSteps.Add(uint64(merged.TotalSteps))
	s.met.trialNonNull.Add(uint64(merged.TotalNonNull))
	s.met.trialsRun.Add(uint64(merged.Trials))
	s.met.trialsConverged.Add(uint64(merged.Converged))
	return nil
}
