package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"popnaming/internal/core"
	"popnaming/internal/experiments"
	"popnaming/internal/fault"
	"popnaming/internal/obs"
	"popnaming/internal/serve/store"
	"popnaming/internal/sim"
)

// Job kinds accepted by POST /v1/jobs.
const (
	// KindSim is one supervised execution (namesim's supervised path).
	KindSim = "sim"
	// KindBatch is a multi-trial supervised batch (sim.RunBatchSupervised).
	KindBatch = "batch"
	// KindCampaign is a fault-injection campaign (experiments.Stabilize).
	KindCampaign = "campaign"
	// KindTable1 is the Table 1 reproduction (experiments.Table1).
	KindTable1 = "table1"
)

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Admission bounds: the service refuses jobs that a CLI would accept
// but that would pin a shared server (huge bounds, unbounded budgets).
const (
	maxP          = 4096
	maxTrials     = 10_000
	maxBudget     = int(1) << 40
	maxJobWorkers = 64
	maxRetries    = 100
	maxEpochs     = 1000
	maxDeadlineMS = int64(24) * 60 * 60 * 1000
)

// Spec is the JSON body of a job submission. Unknown fields are
// rejected; zero fields take the documented defaults. Seed 0 is
// auto-derived (obs.ResolveSeed) and the resolved value is echoed in
// the job view and every journal header, so any accepted job is
// replayable byte-for-byte.
type Spec struct {
	// Kind selects the job type: sim | batch | campaign | table1.
	Kind string `json:"kind"`

	// Protocol is a registry key (sim, batch, campaign; see
	// experiments.RegistryKeys). P is the population bound (default 8;
	// table1 default 6) and N the population size (default P).
	Protocol string `json:"protocol,omitempty"`
	P        int    `json:"p,omitempty"`
	N        int    `json:"n,omitempty"`

	// Sched (random | roundrobin | matching, default random) and Init
	// (zero | uniform | arbitrary, default zero) apply to sim and
	// batch jobs only.
	Sched string `json:"sched,omitempty"`
	Init  string `json:"init,omitempty"`

	// Engine selects the execution engine for sim and batch jobs:
	// "agent" (or empty, the default) runs the agent-array engine;
	// "count" runs the count-based (Gillespie) engine, whose per-step
	// cost is independent of N — N may then exceed P, up to the
	// pair-weight overflow bound. The count engine has no agent
	// identities, so identity-dependent features (campaign/table1 kinds,
	// fault plans, supervision, non-random schedulers, arbitrary init)
	// are rejected at admission with a structured 400 naming the
	// feature. Sampler picks its state sampler (auto | fenwick | alias;
	// count jobs only).
	Engine  string `json:"engine,omitempty"`
	Sampler string `json:"sampler,omitempty"`

	// Seed is the base RNG seed (0: auto-derive; echoed back).
	Seed int64 `json:"seed,omitempty"`
	// Budget is the per-trial interaction budget (default 50M; table1
	// 20M per cell run).
	Budget int `json:"budget,omitempty"`
	// Trials (batch/campaign, default 10) and Workers (default 1)
	// size the run. A sim job is exactly one trial.
	Trials  int `json:"trials,omitempty"`
	Workers int `json:"workers,omitempty"`

	// Faults is a fault-plan string (sim, batch, campaign; see
	// internal/fault). A malformed plan is rejected with the parser's
	// structured location in the error body.
	Faults string `json:"faults,omitempty"`

	// DeadlineMS bounds the job's wall clock (0: none), RetriesN the
	// stall retries, Stall the quiet-streak stall threshold (0: no
	// stall detection for sim/batch; campaign default), ProgressEvery
	// the progress-record period in interactions (0: final only).
	DeadlineMS    int64 `json:"deadlineMs,omitempty"`
	Retries       int   `json:"retries,omitempty"`
	Stall         int   `json:"stall,omitempty"`
	ProgressEvery int   `json:"progressEvery,omitempty"`

	// Epochs and CorruptK shape a campaign's default plan (ignored
	// when Faults is set); ModelCheckP bounds table1's exhaustive
	// checks (default 3).
	Epochs      int `json:"epochs,omitempty"`
	CorruptK    int `json:"corruptK,omitempty"`
	ModelCheckP int `json:"modelCheckP,omitempty"`

	// Shard restricts a batch job to the contiguous global trial range
	// [lo, hi) of the logical batch described by the rest of the spec.
	// This is the wire half of the dist shard protocol: a coordinator
	// POSTs the original spec plus shard to a peer, and because trial
	// seeds derive from the global index, the shard's records are
	// byte-identical to the same trials of a 1-node run. Shard jobs
	// always execute locally (a peer never re-distributes a shard).
	Shard *ShardRange `json:"shard,omitempty"`

	// Trace opts the job into span tracing: the result stream gains v1
	// "span" records covering admission-to-terminal, queue wait, and —
	// for sim/batch/campaign jobs — every trial, attempt and
	// supervision slice, with fault injections as span events. The
	// trace ID derives from the resolved seed, so a same-seed
	// resubmission reproduces the span tree byte-for-byte modulo
	// durNs/queueWaitNs. Untraced jobs emit exactly the pre-trace
	// stream (the determinism contract is unchanged).
	Trace bool `json:"trace,omitempty"`
}

// ShardRange is a contiguous global trial range [Lo, Hi) of a batch
// job (see Spec.Shard).
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Error is the structured rejection body, rendered as
// {"error": {...}}. For fault-plan rejections Kind/Offset/Token carry
// fault.ParseError's location verbatim; for queue rejections
// RetryAfterSec mirrors the Retry-After header.
type Error struct {
	Status        int    `json:"-"`
	Message       string `json:"message"`
	Kind          string `json:"kind,omitempty"`
	Offset        int    `json:"offset,omitempty"`
	Token         string `json:"token,omitempty"`
	RetryAfterSec int    `json:"retryAfterSec,omitempty"`
	// Feature names the identity-dependent feature a count-engine job
	// asked for (kind "count-incompatible" rejections), so clients can
	// fix the one offending field instead of parsing prose.
	Feature string `json:"feature,omitempty"`
}

func (e *Error) Error() string { return e.Message }

func badRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Kind: "validation", Message: fmt.Sprintf(format, args...)}
}

// countBadRequest is the structured rejection for a count-engine job
// that asked for identity-dependent machinery: a 400 whose Feature
// field names the incompatible feature.
func countBadRequest(feature, format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Kind: "count-incompatible",
		Feature: feature, Message: fmt.Sprintf(format, args...)}
}

// validated is a Spec that passed admission: defaults filled, seed
// resolved, protocol instantiated, fault plan parsed and
// capability-checked. Everything a worker needs to run the job without
// a fallible step.
type validated struct {
	spec        Spec
	seedDerived bool
	proto       core.Protocol // nil for table1
	plan        *fault.Plan
}

// prepare validates a submitted Spec against the protocol registry and
// the fault parser, filling defaults and resolving the seed. All
// rejection happens here, before the job is admitted to the queue.
func prepare(spec Spec) (*validated, *Error) {
	v := &validated{spec: spec}
	sp := &v.spec
	switch sp.Kind {
	case KindSim, KindBatch, KindCampaign, KindTable1:
	case "":
		return nil, badRequest("missing job kind (sim | batch | campaign | table1)")
	default:
		return nil, badRequest("unknown job kind %q (sim | batch | campaign | table1)", sp.Kind)
	}
	switch sp.Engine {
	case "", "agent", "count":
	default:
		return nil, badRequest("unknown engine %q (agent | count)", sp.Engine)
	}
	// The count engine knows no agent identities: everything that
	// addresses an individual agent is rejected here, at admission, with
	// the offending feature named in the error body.
	if sp.Engine == "count" {
		if sp.Kind == KindCampaign || sp.Kind == KindTable1 {
			return nil, countBadRequest("kind:"+sp.Kind,
				"%s jobs need the agent engine (fault campaigns and Table 1 cells drive identity-dependent machinery); the count engine supports kinds sim | batch", sp.Kind)
		}
		if sp.Faults != "" {
			return nil, countBadRequest("faults",
				"count-engine jobs cannot inject faults: fault kinds target individual agents")
		}
		if sp.DeadlineMS != 0 || sp.Retries != 0 || sp.Stall != 0 {
			return nil, countBadRequest("supervision",
				"count-engine jobs run unsupervised: deadlineMs/retries/stall are agent-engine features")
		}
		if !sim.ValidCountSampler(sp.Sampler) {
			return nil, badRequest("unknown sampler %q (auto | fenwick | alias)", sp.Sampler)
		}
	} else if sp.Sampler != "" {
		return nil, badRequest("sampler applies to count-engine jobs only (set \"engine\": \"count\")")
	}
	sp.Seed, v.seedDerived = obs.ResolveSeed(sp.Seed)
	if sp.Budget == 0 {
		sp.Budget = defaultBudget(sp.Kind)
	}
	if sp.Budget < 1 || sp.Budget > maxBudget {
		return nil, badRequest("budget %d outside [1,2^40]", sp.Budget)
	}
	if sp.Workers == 0 {
		sp.Workers = 1
	}
	if sp.Workers < 1 || sp.Workers > maxJobWorkers {
		return nil, badRequest("workers %d outside [1,%d]", sp.Workers, maxJobWorkers)
	}
	if sp.Retries < 0 || sp.Retries > maxRetries {
		return nil, badRequest("retries %d outside [0,%d]", sp.Retries, maxRetries)
	}
	if sp.Stall < 0 {
		return nil, badRequest("stall %d is negative", sp.Stall)
	}
	if sp.ProgressEvery < 0 {
		return nil, badRequest("progressEvery %d is negative", sp.ProgressEvery)
	}
	if sp.DeadlineMS < 0 || sp.DeadlineMS > maxDeadlineMS {
		return nil, badRequest("deadlineMs %d outside [0,%d]", sp.DeadlineMS, maxDeadlineMS)
	}

	if sp.Kind == KindTable1 {
		// Table 1 runs a fixed protocol roster; the per-protocol knobs
		// make no sense and are rejected rather than silently ignored.
		for field, val := range map[string]string{
			"protocol": sp.Protocol, "sched": sp.Sched, "init": sp.Init, "faults": sp.Faults,
		} {
			if val != "" {
				return nil, badRequest("table1 jobs take no %q field", field)
			}
		}
		if sp.Trials != 0 || sp.N != 0 || sp.Epochs != 0 || sp.CorruptK != 0 {
			return nil, badRequest("table1 jobs take no trials/n/epochs/corruptK fields")
		}
		if sp.P == 0 {
			sp.P = 6
		}
		if sp.P < 2 || sp.P > 16 {
			return nil, badRequest("table1 bound p %d outside [2,16]", sp.P)
		}
		if sp.ModelCheckP == 0 {
			sp.ModelCheckP = 3
		}
		if sp.ModelCheckP < 2 || sp.ModelCheckP > 4 {
			return nil, badRequest("table1 modelCheckP %d outside [2,4] (state spaces grow exponentially)", sp.ModelCheckP)
		}
		return v, nil
	}
	if sp.ModelCheckP != 0 {
		return nil, badRequest("modelCheckP applies to table1 jobs only")
	}

	// Protocol-backed kinds: sim, batch, campaign.
	if sp.Protocol == "" {
		return nil, badRequest("missing protocol (known: %v)", experiments.RegistryKeys())
	}
	pspec, err := experiments.Lookup(sp.Protocol)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if sp.P == 0 {
		sp.P = 8
	}
	if sp.P < 2 || sp.P > maxP {
		return nil, badRequest("population bound p %d outside [2,%d]", sp.P, maxP)
	}
	v.proto = pspec.New(sp.P)
	if sp.N == 0 {
		sp.N = sp.P
	}
	if sp.N < 1 {
		return nil, badRequest("population size n %d outside [1,p=%d]", sp.N, sp.P)
	}
	// The agent engine needs one slot per agent, bounding N by P. Count
	// dynamics are defined for any N (naming is then unachievable when
	// N > P — the large-N scaling regime); the count runner probe in
	// validateRun enforces the pair-weight overflow bound instead.
	if sp.N > sp.P && sp.Engine != "count" {
		return nil, badRequest("population size n %d outside [1,p=%d]", sp.N, sp.P)
	}

	plan, perr := fault.Parse(sp.Faults)
	if perr != nil {
		var pe *fault.ParseError
		if errors.As(perr, &pe) {
			return nil, &Error{
				Status:  http.StatusBadRequest,
				Kind:    pe.Kind,
				Offset:  pe.Offset,
				Token:   pe.Token,
				Message: "faults: " + perr.Error(),
			}
		}
		return nil, badRequest("faults: %v", perr)
	}
	v.plan = plan
	if !plan.Empty() {
		// Capability check (e.g. a leader event against a leaderless
		// protocol) with a throwaway injector, so workers cannot fail.
		if _, err := fault.NewInjector(plan, v.proto, sp.Seed); err != nil {
			return nil, badRequest("faults: %v", err)
		}
	}

	switch sp.Kind {
	case KindSim:
		if sp.Trials > 1 {
			return nil, badRequest("sim jobs run exactly one trial (got trials=%d); use kind \"batch\"", sp.Trials)
		}
		sp.Trials = 1
		if err := validateRun(v); err != nil {
			return nil, err
		}
	case KindBatch:
		if sp.Trials == 0 {
			sp.Trials = 10
		}
		if sp.Trials < 1 || sp.Trials > maxTrials {
			return nil, badRequest("trials %d outside [1,%d]", sp.Trials, maxTrials)
		}
		if err := validateRun(v); err != nil {
			return nil, err
		}
	case KindCampaign:
		if sp.Sched != "" || sp.Init != "" {
			return nil, badRequest("campaign jobs fix arbitrary init and the random scheduler; sched/init must be empty")
		}
		if _, ok := v.proto.(core.ArbitraryInitProtocol); !ok {
			return nil, badRequest("protocol %q does not support arbitrary initialization (campaign jobs need it)", sp.Protocol)
		}
		if sp.Trials == 0 {
			sp.Trials = 10
		}
		if sp.Trials < 1 || sp.Trials > maxTrials {
			return nil, badRequest("trials %d outside [1,%d]", sp.Trials, maxTrials)
		}
		if sp.Epochs < 0 || sp.Epochs > maxEpochs {
			return nil, badRequest("epochs %d outside [0,%d]", sp.Epochs, maxEpochs)
		}
		if sp.CorruptK < 0 || sp.CorruptK > sp.N {
			return nil, badRequest("corruptK %d outside [0,n=%d]", sp.CorruptK, sp.N)
		}
	}
	if sp.Kind != KindCampaign && (sp.Epochs != 0 || sp.CorruptK != 0) {
		return nil, badRequest("epochs/corruptK apply to campaign jobs only")
	}
	if sp.Shard != nil {
		if sp.Kind != KindBatch {
			return nil, badRequest("shard applies to batch jobs only (got kind %q)", sp.Kind)
		}
		if sp.Shard.Lo < 0 || sp.Shard.Lo >= sp.Shard.Hi || sp.Shard.Hi > sp.Trials {
			return nil, badRequest("shard [%d,%d) outside [0,trials=%d)", sp.Shard.Lo, sp.Shard.Hi, sp.Trials)
		}
	}
	return v, nil
}

// validateRun checks the sim/batch sched/init keys by probing the
// builders once, so the per-attempt builders on the worker cannot fail.
// For count-engine jobs the probe is a throwaway CountRunner, which
// also enforces the compiled-table state cap and the pair-weight
// overflow bound on N.
func validateRun(v *validated) *Error {
	sp := &v.spec
	if sp.Sched == "" {
		sp.Sched = "random"
	}
	if sp.Init == "" {
		sp.Init = "zero"
	}
	if sp.Engine == "count" {
		if sp.Sched != "random" {
			return countBadRequest("sched:"+sp.Sched,
				"count dynamics are defined only for the uniform random scheduler (got %q)", sp.Sched)
		}
		if sp.Init == "arbitrary" {
			return countBadRequest("init:arbitrary",
				"arbitrary initialization draws an agent array; count-engine jobs take init zero | uniform")
		}
		cc, err := buildCountStart(v.proto, sp.N, sp.Init)
		if err != nil {
			return badRequest("%v", err)
		}
		if _, err := sim.NewCountRunner(v.proto, cc, sp.Seed); err != nil {
			return badRequest("%v", err)
		}
		return nil
	}
	if _, err := buildConfig(v.proto, sp.N, sp.Init, sp.Seed); err != nil {
		return badRequest("%v", err)
	}
	if _, err := buildScheduler(v.proto, sp.N, sp.Sched, sp.Seed); err != nil {
		return badRequest("%v", err)
	}
	return nil
}

// defaultBudget is the per-kind default interaction budget.
func defaultBudget(kind string) int {
	if kind == KindTable1 {
		return 20_000_000
	}
	return 50_000_000
}

// Prepared is a job spec that passed the service's admission
// validation: defaults filled, seed resolved, protocol instantiated,
// fault plan parsed and capability-checked. It exposes the exact
// execution recipe the service workers use — trial seeds, supervision
// bounds, stream header — to in-process embedders: the campaign
// pipeline (internal/grid) runs grid cells through it so a local cell
// run is record-for-record identical to the same cell submitted to a
// ppserved node.
type Prepared struct {
	v *validated
}

// Prepare validates spec exactly as POST /v1/jobs admission does and
// returns the prepared job. The error, when non-nil, is the *Error the
// service would have answered with.
func Prepare(spec Spec) (*Prepared, error) {
	v, e := prepare(spec)
	if e != nil {
		return nil, e
	}
	return &Prepared{v: v}, nil
}

// Spec returns the normalized spec: defaults filled and seed resolved,
// the canonical form the service hashes for its result cache. Posting
// it to a ppserved node re-validates to the identical spec.
func (p *Prepared) Spec() Spec { return p.v.spec }

// Proto returns the instantiated protocol (nil for table1 jobs).
func (p *Prepared) Proto() core.Protocol { return p.v.proto }

// SeedDerived reports whether the seed was auto-derived at Prepare.
func (p *Prepared) SeedDerived() bool { return p.v.seedDerived }

// Header returns the v1 stream header the service would emit for this
// job, under the given tool name.
func (p *Prepared) Header(tool string) obs.Header { return headerFor(p.v, tool) }

// TrialMaker returns the per-trial constructor for agent-engine
// batches, with the service's seed recipe (see batchTrialMaker).
func (p *Prepared) TrialMaker() func(trial, attempt int) sim.Trial {
	return batchTrialMaker(p.v)
}

// CountTrialMaker returns the per-trial constructor for count-engine
// batches, with the service's seed recipe (see countTrialMaker).
func (p *Prepared) CountTrialMaker() func(trial int) sim.CountTrial {
	return countTrialMaker(p.v)
}

// Supervision returns the sim.Supervision for the spec's bounds, wired
// to sink (tracing disabled).
func (p *Prepared) Supervision(sink obs.Sink) sim.Supervision {
	return supervisionFor(p.v, sink)
}

// JobSummary condenses a finished job's outcome for the job view (the
// full per-trial detail is in the result stream).
type JobSummary struct {
	// Status/Reason/Converged/ValidNaming/Steps/NonNull describe a sim
	// job's single supervised trial.
	Status      string `json:"status,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Converged   bool   `json:"converged,omitempty"`
	ValidNaming bool   `json:"validNaming,omitempty"`
	Steps       int64  `json:"steps,omitempty"`
	NonNull     int64  `json:"nonNull,omitempty"`
	// Trials/TrialsConverged/Aborted/Retried aggregate batch and
	// campaign jobs; Cells counts table1 cells completed.
	Trials          int  `json:"trials,omitempty"`
	TrialsConverged int  `json:"trialsConverged,omitempty"`
	Aborted         int  `json:"aborted,omitempty"`
	Retried         int  `json:"retried,omitempty"`
	Cells           int  `json:"cells,omitempty"`
	OK              bool `json:"ok"`
}

// Job is one admitted submission: its validated spec, result buffer,
// cancellation scope and lifecycle state. State transitions happen
// under mu; the buffer has its own lock (lock order: never take a
// job's mu while holding the server's).
type Job struct {
	ID string

	v      *validated
	buf    *buffer
	ctx    context.Context
	cancel context.CancelFunc

	// Trace plumbing, set once at admission and immutable afterwards:
	// rootSpan covers admission to terminal, queueSpan admission to
	// execution start. Span methods are called only by the owning
	// worker (or, for a job canceled while queued, by the single
	// goroutine that wins finalization). All nil/disabled when the spec
	// did not opt in.
	traceID   obs.TraceID
	rootSpan  *obs.Span
	queueSpan *obs.Span
	admitted  time.Time

	// key is the job's content address (canonical-spec hash), set once
	// at admission; it doubles as the Idempotency-Key header value.
	key string

	// restoredLeases carries the lease snapshots a previous incarnation
	// journaled for this job (set once at restore, nil otherwise): the
	// dist coordinator re-issues only the incomplete ones, restoring
	// completed shards from the store.
	restoredLeases []store.LeaseSnap

	mu          sync.Mutex
	state       JobState
	errMsg      string
	started     time.Time
	wallNS      int64
	queueWaitNS int64
	summary     *JobSummary
	live        *obs.Observer
	finalized   bool
	// cached marks a job served from the result cache without a run.
	cached bool
}

// traceCtx returns the root span's context — the parent for every
// child span the job's workload emits — or a disabled context for
// untraced jobs.
func (j *Job) traceCtx() obs.SpanContext { return j.rootSpan.Context() }

// JobView is the GET /v1/jobs/{id} representation.
type JobView struct {
	ID          string   `json:"id"`
	Kind        string   `json:"kind"`
	State       JobState `json:"state"`
	Protocol    string   `json:"protocol,omitempty"`
	P           int      `json:"p,omitempty"`
	N           int      `json:"n,omitempty"`
	Sched       string   `json:"sched,omitempty"`
	Init        string   `json:"init,omitempty"`
	Engine      string   `json:"engine,omitempty"`
	Sampler     string   `json:"sampler,omitempty"`
	Faults      string   `json:"faults,omitempty"`
	Budget      int      `json:"budget,omitempty"`
	Trials      int      `json:"trials,omitempty"`
	Workers     int      `json:"workers,omitempty"`
	Seed        int64    `json:"seed"`
	SeedDerived bool     `json:"seedDerived,omitempty"`
	// Shard echoes a shard job's trial range.
	Shard *ShardRange `json:"shard,omitempty"`
	// Trace is the job's trace ID when span tracing was requested.
	Trace string `json:"trace,omitempty"`
	// Cached marks a job whose results were served from the result
	// cache without re-simulation; IdempotencyKey is the canonical-spec
	// hash that addressed (or populated) the cache.
	Cached         bool   `json:"cached,omitempty"`
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	// Records is the number of NDJSON result records buffered so far.
	Records int `json:"records"`
	// Error carries the failure (or cancellation) detail.
	Error string `json:"error,omitempty"`
	// WallNS is the job's wall-clock time once terminal.
	WallNS  int64       `json:"wallNs,omitempty"`
	Summary *JobSummary `json:"summary,omitempty"`
	// Live is a point-in-time scrape of a running sim job's observer.
	Live *obs.ObserverSnapshot `json:"live,omitempty"`
}

// view snapshots the job for JSON rendering.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	sp := j.v.spec
	view := JobView{
		ID: j.ID, Kind: sp.Kind, State: j.state,
		Protocol: sp.Protocol, P: sp.P, N: sp.N, Sched: sp.Sched, Init: sp.Init,
		Engine: sp.Engine, Sampler: sp.Sampler,
		Faults: sp.Faults, Budget: sp.Budget, Trials: sp.Trials, Workers: sp.Workers,
		Seed: sp.Seed, SeedDerived: j.v.seedDerived, Shard: sp.Shard,
		Cached: j.cached, IdempotencyKey: j.key,
		Records: j.buf.len(), Error: j.errMsg, WallNS: j.wallNS, Summary: j.summary,
	}
	if j.traceID != 0 {
		view.Trace = j.traceID.String()
	}
	if j.state == StateRunning && j.live != nil {
		snap := j.live.Snapshot()
		view.Live = &snap
	}
	return view
}

// setLive registers the running trial's observer for live /metrics and
// job-view scrapes (sim jobs; cleared implicitly when the job ends).
func (j *Job) setLive(o *obs.Observer) {
	j.mu.Lock()
	j.live = o
	j.mu.Unlock()
}

// setSummary records the outcome summary.
func (j *Job) setSummary(s *JobSummary) {
	j.mu.Lock()
	j.summary = s
	j.mu.Unlock()
}

// fail moves a running job to failed with the given detail.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	if !j.state.terminal() {
		j.state = StateFailed
		j.errMsg = msg
	}
	j.mu.Unlock()
}

// begin moves a queued job to running. It returns false when the job is
// no longer runnable (canceled while queued, or its context is already
// dead), leaving the state terminal. The in-memory transition and the
// store's state record are both written under j.mu — as is the
// terminal write in finalize — so a cancel racing worker pickup
// serializes: whichever takes the lock first wins, and the store's
// record order matches the order the job actually transitioned in
// (the queued→canceled vs queued→running TOCTOU cannot journal a
// canceled job as running).
func (j *Job) begin(st JobStore) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	if j.ctx.Err() != nil {
		j.state = StateCanceled
		j.errMsg = "canceled while queued"
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	if !j.admitted.IsZero() {
		j.queueWaitNS = j.started.Sub(j.admitted).Nanoseconds()
	}
	_ = st.SetState(j.ID, storeState(StateRunning))
	return true
}

// queueWait reads the job's queue-wait duration (0 until it starts).
func (j *Job) queueWait() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.queueWaitNS
}

// JobRec is the service-journal record for a job lifecycle transition;
// the terminal transition is also the last record of the job's result
// stream. WallNS and QueueWaitNS are wall-clock fields (excluded from
// the determinism contract, like elapsedNs/wallNs everywhere else in
// the journal).
type JobRec struct {
	V           int    `json:"v"`
	Type        string `json:"type"` // "job"
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       string `json:"state"`
	Protocol    string `json:"protocol,omitempty"`
	Seed        int64  `json:"seed"`
	Trace       string `json:"trace,omitempty"`
	Cached      bool   `json:"cached,omitempty"`
	Error       string `json:"error,omitempty"`
	WallNS      int64  `json:"wallNs,omitempty"`
	QueueWaitNS int64  `json:"queueWaitNs,omitempty"`
}

// recLocked builds the job's lifecycle record; callers hold j.mu.
func (j *Job) recLocked() JobRec {
	rec := JobRec{
		V: obs.Version, Type: "job", ID: j.ID,
		Kind: j.v.spec.Kind, State: string(j.state),
		Protocol: j.v.spec.Protocol, Seed: j.v.spec.Seed,
		Cached: j.cached, Error: j.errMsg, WallNS: j.wallNS, QueueWaitNS: j.queueWaitNS,
	}
	if j.traceID != 0 {
		rec.Trace = j.traceID.String()
	}
	return rec
}

// rec builds the job's lifecycle record.
func (j *Job) rec() JobRec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recLocked()
}

// CampaignRec is the result record of a campaign job: the full
// experiments.StabilizeResult under the v1 record envelope.
type CampaignRec struct {
	V      int                         `json:"v"`
	Type   string                      `json:"type"` // "campaign"
	Result experiments.StabilizeResult `json:"result"`
}

// Table1Rec is the result record of a table1 job. Cell.WallNS fields
// are wall-clock.
type Table1Rec struct {
	V     int                `json:"v"`
	Type  string             `json:"type"` // "table1"
	Cells []experiments.Cell `json:"cells"`
}
