package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"popnaming/internal/obs"
)

// countSpec returns a spec the count engine accepts; rejection tests
// mutate one field at a time.
func countSpec() Spec {
	return Spec{
		Kind: KindSim, Protocol: "asym", P: 12, N: 10,
		Engine: "count", Seed: 7, Budget: 1_000_000,
	}
}

// TestCountAdmissionRejections pins the structured 400 contract: every
// identity-dependent feature on a count-engine job is rejected at
// admission with kind "count-incompatible" and the offending feature
// named in the error body.
func TestCountAdmissionRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	cases := []struct {
		name    string
		mutate  func(*Spec)
		feature string // expected Error.Feature; "" means kind "validation"
	}{
		{"campaign", func(sp *Spec) { sp.Kind = KindCampaign }, "kind:campaign"},
		{"table1", func(sp *Spec) { sp.Kind = KindTable1; sp.Protocol = ""; sp.P = 0; sp.N = 0 }, "kind:table1"},
		{"faults", func(sp *Spec) { sp.Faults = "@conv:corrupt=2" }, "faults"},
		{"deadline", func(sp *Spec) { sp.DeadlineMS = 1000 }, "supervision"},
		{"retries", func(sp *Spec) { sp.Retries = 1 }, "supervision"},
		{"stall", func(sp *Spec) { sp.Stall = 100 }, "supervision"},
		{"roundrobin", func(sp *Spec) { sp.Sched = "roundrobin" }, "sched:roundrobin"},
		{"matching", func(sp *Spec) { sp.Sched = "matching" }, "sched:matching"},
		{"arbitrary", func(sp *Spec) { sp.Init = "arbitrary" }, "init:arbitrary"},
		{"badsampler", func(sp *Spec) { sp.Sampler = "vose" }, ""},
		{"badengine", func(sp *Spec) { sp.Engine = "warp" }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := countSpec()
			c.mutate(&sp)
			code, _, e, _ := postJob(t, ts, sp)
			if code != http.StatusBadRequest || e == nil {
				t.Fatalf("status %d, error %+v; want 400 with body", code, e)
			}
			if c.feature != "" {
				if e.Kind != "count-incompatible" {
					t.Errorf("kind = %q, want count-incompatible", e.Kind)
				}
				if e.Feature != c.feature {
					t.Errorf("feature = %q, want %q", e.Feature, c.feature)
				}
			} else if e.Kind != "validation" {
				t.Errorf("kind = %q, want validation", e.Kind)
			}
		})
	}

	// Sampler on an agent-engine job is a plain validation 400 too.
	sp := countSpec()
	sp.Engine = ""
	sp.Sampler = "fenwick"
	if code, _, e, _ := postJob(t, ts, sp); code != http.StatusBadRequest || e == nil || !strings.Contains(e.Message, "count-engine jobs only") {
		t.Fatalf("agent job with sampler: status %d, error %+v", code, e)
	}
}

// TestCountSimJob runs a count sim job end to end: the stream header
// carries the engine, census records follow progress, and the summary
// reports a converged, correctly named population.
func TestCountSimJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	sp := countSpec()
	sp.ProgressEvery = 1000
	sp.Sampler = "alias"
	code, v, e, _ := postJob(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("status %d, error %+v", code, e)
	}
	if v.Engine != "count" || v.Sampler != "alias" {
		t.Fatalf("view engine=%q sampler=%q", v.Engine, v.Sampler)
	}
	done := waitState(t, ts, v.ID, StateDone, 30*time.Second)
	if done.Summary == nil || !done.Summary.OK || !done.Summary.Converged || !done.Summary.ValidNaming {
		t.Fatalf("summary = %+v", done.Summary)
	}
	lines := streamLines(t, ts, v.ID)
	var hdr obs.Header
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Engine != "count" || hdr.Scheduler != "random" || hdr.Init != "zero" {
		t.Fatalf("header engine=%q scheduler=%q init=%q", hdr.Engine, hdr.Scheduler, hdr.Init)
	}
	census := 0
	for _, l := range lines {
		if strings.Contains(string(l), `"type":"census"`) {
			census++
		}
	}
	if census == 0 {
		t.Fatal("stream has no census records")
	}
}

// TestCountBatchJob runs a count batch job and checks the aggregate
// summary plus the closing batch_summary record.
func TestCountBatchJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	sp := countSpec()
	sp.Kind = KindBatch
	sp.Trials = 6
	sp.Workers = 2
	code, v, e, _ := postJob(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("status %d, error %+v", code, e)
	}
	done := waitState(t, ts, v.ID, StateDone, 60*time.Second)
	if done.Summary == nil || !done.Summary.OK || done.Summary.TrialsConverged != 6 {
		t.Fatalf("summary = %+v", done.Summary)
	}
	lines := streamLines(t, ts, v.ID)
	batchSummaries := 0
	for _, l := range lines {
		if strings.Contains(string(l), `"type":"batch_summary"`) {
			batchSummaries++
		}
	}
	if batchSummaries != 1 {
		t.Fatalf("got %d batch_summary records, want 1", batchSummaries)
	}
}

// TestCountLargeN pins the service-level headline: a count job with N
// far beyond both P and the agent engine's practical range is admitted
// and runs (the same N would be rejected for an agent-engine job).
func TestCountLargeN(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	sp := countSpec()
	sp.N = 50_000_000
	sp.Budget = 200_000
	code, v, e, _ := postJob(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("status %d, error %+v", code, e)
	}
	done := waitState(t, ts, v.ID, StateDone, 30*time.Second)
	if done.Summary == nil || done.Summary.Status != "ok" {
		t.Fatalf("summary = %+v", done.Summary)
	}

	// The identical spec on the agent engine is over the N ≤ P bound.
	sp.Engine = ""
	sp.Sampler = ""
	if code, _, e, _ := postJob(t, ts, sp); code != http.StatusBadRequest || e == nil {
		t.Fatalf("agent job at N=5e7: status %d, error %+v", code, e)
	}
}
