package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchPeers starts n real ppserved peers and returns their URLs.
// Caches are disabled everywhere so every lease is a real simulation,
// not a memoized replay.
func benchPeers(b *testing.B, n int) []string {
	b.Helper()
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ps, err := New(Config{Workers: 1, QueueCap: 64, CacheBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		pts := httptest.NewServer(ps.Handler())
		b.Cleanup(func() { pts.Close(); ps.Close() })
		urls = append(urls, pts.URL)
	}
	return urls
}

// benchDistRun submits one sharded batch on a coordinator configured
// with the given peers and reads the merged stream to EOF, returning
// the wall time. Each call uses a distinct seed so nothing upstream
// can dedupe the work.
func benchDistRun(b *testing.B, ts *httptest.Server, seed int64) time.Duration {
	b.Helper()
	spec := distSpec()
	spec.Seed = seed
	spec.Trials = 32
	raw, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		b.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	rr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + view.ID + "/results")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, rr.Body); err != nil {
		b.Fatal(err)
	}
	rr.Body.Close()
	return time.Since(t0)
}

func benchDist(b *testing.B, peers []string) {
	s, err := New(Config{
		Workers: 2, QueueCap: 8, CacheBytes: -1,
		Peers: peers, LeaseTrials: 4, DistRetries: 2,
		LeaseTimeout: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	benchDistRun(b, ts, 1) // warm: connections, first compile
	b.ResetTimer()
	var total time.Duration
	trials := 0
	for i := 0; i < b.N; i++ {
		total += benchDistRun(b, ts, int64(100+i))
		trials += 32
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(trials)/total.Seconds(), "trials/sec")
	}
}

// BenchmarkDistSharded measures end-to-end batch wall clock for the
// same 32-trial job on 1 node (no peers) vs fanned out across 2 and 4
// live peers (bench-dist records the series in BENCH_PR9.json). On a
// single-core host the sharded runs mostly measure coordination
// overhead — the interesting deltas need real hardware parallelism.
func BenchmarkDistSharded(b *testing.B) {
	for _, n := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			benchDist(b, benchPeers(b, n))
		})
	}
}

// BenchmarkDistDegraded measures degraded-mode throughput: one live
// peer plus one dead one, so every lease routed to the dead peer pays
// a failure, a backoff and a re-issue before completing elsewhere.
func BenchmarkDistDegraded(b *testing.B) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	peers := append(benchPeers(b, 1), deadURL)
	benchDist(b, peers)
}
