package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkServeLoad measures the service under closed-loop load:
// each client repeatedly submits a small seeded sim job and reads its
// result stream to EOF, so every iteration covers admission, queueing,
// execution and streaming. Reported metrics are per-job latency
// percentiles and aggregate throughput at 1, 8 and 64 concurrent
// clients (the bench-serve Makefile target records them in
// BENCH_PR5.json).
func BenchmarkServeLoad(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServeLoad(b, clients)
		})
	}
}

func benchServeLoad(b *testing.B, clients int) {
	// Every iteration submits the same seeded spec; the cache is
	// disabled so the benchmark keeps measuring real simulations, not
	// memoized replays (BenchmarkAdmitCacheHit measures those).
	s, err := New(Config{QueueCap: 2*clients + 8, CacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	spec, err := json.Marshal(Spec{
		Kind: KindSim, Protocol: "asym", P: 4, N: 4, Seed: 7, Budget: 50_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	client.Timeout = 2 * time.Minute

	runOne := func() (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			return 0, nil // backpressure: retry, not a failure
		}
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return 0, fmt.Errorf("submit status %d: %s", resp.StatusCode, body)
		}
		var view JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			resp.Body.Close()
			return 0, err
		}
		resp.Body.Close()
		rr, err := client.Get(ts.URL + "/v1/jobs/" + view.ID + "/results")
		if err != nil {
			return 0, err
		}
		_, err = io.Copy(io.Discard, rr.Body)
		rr.Body.Close()
		if err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}

	// Warm one job through so connection setup and first-compile costs
	// sit outside the measurement.
	if _, err := runOne(); err != nil {
		b.Fatal(err)
	}

	var next int64
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for atomic.AddInt64(&next, 1) <= int64(b.N) {
				d, err := runOne()
				if err != nil {
					errs[c] = err
					return
				}
				if d > 0 {
					lats[c] = append(lats[c], d)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	b.ReportMetric(float64(pct(0.50).Nanoseconds()), "p50-ns/job")
	b.ReportMetric(float64(pct(0.99).Nanoseconds()), "p99-ns/job")
	b.ReportMetric(float64(len(all))/wall.Seconds(), "jobs/sec")
}
