package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"popnaming/internal/serve/store"
)

// quickSpec is a seeded sim job that finishes well inside its budget —
// the smallest job that exercises the full lifecycle.
func quickSpec(seed int64) Spec {
	return Spec{Kind: KindSim, Protocol: "asym", P: 4, N: 4, Seed: seed, Budget: 100_000}
}

// canonStream canonicalizes a result stream for cross-run comparison:
// wall-clock fields dropped, "job" records skipped (they carry the
// job's ID, which differs between runs of the same spec). The header
// and every engine record survive — for one spec they must match
// byte-for-byte after canonicalization.
func canonStream(t *testing.T, lines [][]byte) []string {
	t.Helper()
	var out []string
	for _, line := range lines {
		if recType(t, line) == "job" {
			continue
		}
		out = append(out, canonicalize(t, line))
	}
	return out
}

// postJobKey is postJob with an Idempotency-Key request header.
func postJobKey(t *testing.T, ts *httptest.Server, spec Spec, key string) (int, JobView, *Error, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
		return resp.StatusCode, v, nil, resp.Header
	}
	var e struct {
		Error *Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return resp.StatusCode, JobView{}, e.Error, resp.Header
}

// TestLateEmitSentinel pins the post-finalization emit contract: the
// buffer answers ErrLateEmit instead of silently appending, and the
// server wires that into the late_emits counter.
func TestLateEmitSentinel(t *testing.T) {
	late := 0
	b := newBuffer(0, nil, nil, func() { late++ })
	if err := b.Emit(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.finalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(map[string]int{"a": 2}); !errors.Is(err, ErrLateEmit) {
		t.Fatalf("emit after finalize: err = %v, want ErrLateEmit", err)
	}
	if late != 1 {
		t.Fatalf("late hook ran %d times, want 1", late)
	}
	if b.len() != 1 {
		t.Fatalf("late emit changed the log: len %d, want 1", b.len())
	}

	// The server-wired buffer feeds the metric.
	s, err := New(Config{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sb := s.newJobBuffer("j000099")
	if err := sb.finalize(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Emit(map[string]int{"a": 3}); !errors.Is(err, ErrLateEmit) {
		t.Fatalf("server buffer late emit: err = %v", err)
	}
	if got := s.met.lateEmits.Value(); got != 1 {
		t.Fatalf("late_emits = %d, want 1", got)
	}
}

// TestBufferSpill pins the bounded-buffer contract: past the byte cap
// the in-RAM tail moves to the store, logical indexes stay stable, and
// readers see the full log in emit order through the fetch path.
func TestBufferSpill(t *testing.T) {
	m := store.NewMemory()
	b := newBuffer(64,
		func(lines [][]byte) error { return m.AppendResults("x", lines) },
		func(from, to int) ([][]byte, error) { return m.ReadResults("x", from, to) },
		nil)
	const total = 20
	for i := 0; i < total; i++ {
		if err := b.Emit(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if b.len() != total {
		t.Fatalf("len = %d, want %d", b.len(), total)
	}
	spilled, err := m.ReadResults("x", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled) == 0 {
		t.Fatal("nothing spilled despite the 64-byte cap")
	}
	if len(spilled) >= total {
		t.Fatalf("everything spilled pre-finalize: %d of %d", len(spilled), total)
	}
	all, err := b.all()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("all() = %d lines, want %d", len(all), total)
	}
	for i, line := range all {
		var rec struct {
			I int `json:"i"`
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.I != i {
			t.Fatalf("line %d = %q (err %v), want i=%d", i, line, err, i)
		}
	}
	// finalize pushes the rest out of RAM; the logical log is unchanged.
	if err := b.finalize(); err != nil {
		t.Fatal(err)
	}
	spilled, err = m.ReadResults("x", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled) != total {
		t.Fatalf("post-finalize store has %d lines, want %d", len(spilled), total)
	}
	all, err = b.all()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("post-finalize all() = %d lines, want %d", len(all), total)
	}
}

// TestCacheHitServesWithoutRerun pins the content-addressed cache: an
// identical seeded resubmission answers terminal-done from memory with
// the cached marker, the original stream verbatim (new terminal record
// aside), flat simulation counters, and an Idempotency-Key header that
// round-trips — with mismatches rejected.
func TestCacheHitServesWithoutRerun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	spec := Spec{
		Kind: KindBatch, Protocol: "asym", P: 4, N: 4,
		Seed: 7, Trials: 3, Workers: 1, Budget: 200_000,
	}
	status, v1, _, hdr1 := postJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	key := hdr1.Get("Idempotency-Key")
	if !strings.HasPrefix(key, "sha256:") {
		t.Fatalf("Idempotency-Key header %q, want sha256:<hex>", key)
	}
	waitState(t, ts, v1.ID, StateDone, 30*time.Second)
	lines1 := streamLines(t, ts, v1.ID)
	steps0 := s.met.trialSteps.Value()

	status, v2, _, hdr2 := postJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	if v2.ID == v1.ID {
		t.Fatalf("resubmission reused job ID %s", v1.ID)
	}
	if v2.State != StateDone || !v2.Cached {
		t.Fatalf("resubmission view state=%q cached=%v, want done/true", v2.State, v2.Cached)
	}
	if v2.Summary == nil || !v2.Summary.OK {
		t.Fatalf("cached summary %+v", v2.Summary)
	}
	if got := hdr2.Get("Idempotency-Key"); got != key {
		t.Fatalf("hit Idempotency-Key %q, want %q", got, key)
	}
	if got := s.met.trialSteps.Value(); got != steps0 {
		t.Fatalf("cache hit re-simulated: trial steps %d -> %d", steps0, got)
	}
	if got := s.met.cacheHits.Value(); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}

	// The hit's stream is the original prefix verbatim (header included)
	// plus its own terminal record carrying the new ID and the marker.
	lines2 := streamLines(t, ts, v2.ID)
	if len(lines2) != len(lines1) {
		t.Fatalf("hit stream has %d records, original %d", len(lines2), len(lines1))
	}
	for i := 0; i < len(lines1)-1; i++ {
		if !bytes.Equal(lines1[i], lines2[i]) {
			t.Fatalf("record %d differs:\noriginal: %s\nhit:      %s", i, lines1[i], lines2[i])
		}
	}
	var term JobRec
	if err := json.Unmarshal(lines2[len(lines2)-1], &term); err != nil {
		t.Fatal(err)
	}
	if term.ID != v2.ID || !term.Cached || term.State != string(StateDone) {
		t.Fatalf("hit terminal record %+v, want id=%s cached done", term, v2.ID)
	}

	// A client key that does not match the canonical hash is a 400; the
	// matching key is accepted and hits again.
	status, _, jerr, _ := postJobKey(t, ts, spec, "sha256:wrong")
	if status != http.StatusBadRequest || jerr == nil || jerr.Kind != "idempotency-mismatch" {
		t.Fatalf("mismatched key: status %d body %+v", status, jerr)
	}
	status, v3, _, _ := postJobKey(t, ts, spec, key)
	if status != http.StatusAccepted || !v3.Cached {
		t.Fatalf("matching key: status %d cached=%v", status, v3.Cached)
	}
}

// TestRestartRestoresCompletedJobs pins terminal-job recovery: a second
// server over the same store serves the finished job's view, summary
// and byte-identical stream, re-seeds the result cache from it, and
// continues the ID sequence past it.
func TestRestartRestoresCompletedJobs(t *testing.T) {
	m := store.NewMemory()
	s1, err := New(Config{Workers: 1, QueueCap: 4, Store: m})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	status, v1, _, _ := postJob(t, ts1, quickSpec(2))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	done := waitState(t, ts1, v1.ID, StateDone, 30*time.Second)
	lines1 := streamLines(t, ts1, v1.ID)
	ts1.Close()
	s1.Close()

	s2, err := New(Config{Workers: 1, QueueCap: 4, Store: m})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})
	if got := s2.met.restored.Value(); got != 1 {
		t.Fatalf("jobs_restored = %d, want 1", got)
	}
	v := getView(t, ts2, v1.ID)
	if v.State != StateDone || v.Records != len(lines1) {
		t.Fatalf("restored view state=%q records=%d, want done/%d", v.State, v.Records, len(lines1))
	}
	if v.Summary == nil || !v.Summary.OK || v.Summary.Steps != done.Summary.Steps {
		t.Fatalf("restored summary %+v, want %+v", v.Summary, done.Summary)
	}
	if v.IdempotencyKey == "" || v.Seed != 2 {
		t.Fatalf("restored identity: key=%q seed=%d", v.IdempotencyKey, v.Seed)
	}
	lines2 := streamLines(t, ts2, v1.ID)
	if len(lines2) != len(lines1) {
		t.Fatalf("restored stream %d records, want %d", len(lines2), len(lines1))
	}
	for i := range lines1 {
		if !bytes.Equal(lines1[i], lines2[i]) {
			t.Fatalf("restored record %d differs:\nbefore: %s\nafter:  %s", i, lines1[i], lines2[i])
		}
	}
	// The cache was re-seeded from the store: an identical resubmission
	// is a hit, and its ID continues past the restored one.
	status, v2, _, _ := postJob(t, ts2, quickSpec(2))
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	if !v2.Cached || v2.State != StateDone {
		t.Fatalf("post-restart resubmission state=%q cached=%v, want done/true", v2.State, v2.Cached)
	}
	if v2.ID <= v1.ID {
		t.Fatalf("ID sequence did not continue: %s after %s", v2.ID, v1.ID)
	}
}

// TestRestartRequeuesInterruptedJobs pins mid-flight recovery: jobs the
// previous process left queued or running are re-queued at boot, their
// partial result logs reset, and the deterministic re-run matches a
// fresh reference run record-for-record.
func TestRestartRequeuesInterruptedJobs(t *testing.T) {
	// Craft the store a crashed server would leave behind: one job
	// caught running with a partial result log, one still queued.
	v, verr := prepare(quickSpec(2))
	if verr != nil {
		t.Fatal(verr)
	}
	canonical, err := canonicalSpec(v)
	if err != nil {
		t.Fatal(err)
	}
	m := store.NewMemory()
	for _, id := range []string{"j000001", "j000002"} {
		if err := m.Admit(id, canonical, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SetState("j000001", store.StateRunning); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendResults("j000001", [][]byte{[]byte("{\"partial\":true}\n")}); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 2, QueueCap: 4, Store: m, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	if got := s.met.requeued.Value(); got != 2 {
		t.Fatalf("jobs_requeued = %d, want 2", got)
	}
	waitState(t, ts, "j000001", StateDone, 30*time.Second)
	waitState(t, ts, "j000002", StateDone, 30*time.Second)

	// The reference: the same spec on a fresh server.
	_, tsRef := newTestServer(t, Config{Workers: 1, QueueCap: 4, CacheBytes: -1})
	status, ref, _, _ := postJob(t, tsRef, quickSpec(2))
	if status != http.StatusAccepted {
		t.Fatalf("reference submit status %d", status)
	}
	waitState(t, tsRef, ref.ID, StateDone, 30*time.Second)
	want := canonStream(t, streamLines(t, tsRef, ref.ID))

	for _, id := range []string{"j000001", "j000002"} {
		lines := streamLines(t, ts, id)
		for _, line := range lines {
			if bytes.Contains(line, []byte("partial")) {
				t.Fatalf("%s: stale pre-crash line survived the reset: %s", id, line)
			}
		}
		got := canonStream(t, lines)
		if len(got) != len(want) {
			t.Fatalf("%s: %d canonical records, reference %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s record %d differs:\nrerun:     %s\nreference: %s", id, i, got[i], want[i])
			}
		}
	}
	// The store journaled the full second lifecycle.
	snaps, err := m.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("store holds %d jobs, want 2", len(snaps))
	}
	for _, snap := range snaps {
		if snap.State != store.StateDone || snap.ResultLines == 0 {
			t.Fatalf("snapshot %s: state=%q lines=%d", snap.ID, snap.State, snap.ResultLines)
		}
	}
}

// TestCancelRacePickup drives the cancel-while-queued vs worker-pickup
// race under load (run with -race via make race-store): every job must
// land terminal canceled in both the server's view and the store's
// record sequence, never journaled running after canceled.
func TestCancelRacePickup(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const rounds = 40
	jobs := make([]*Job, 0, rounds)
	for i := 0; i < rounds; i++ {
		j, jerr := s.Submit(longRunningSpec())
		if jerr != nil {
			t.Fatalf("submit %d: %v", i, jerr)
		}
		s.Cancel(j)
		jobs = append(jobs, j)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, j := range jobs {
		for {
			v := j.view()
			if v.State.terminal() {
				if v.State != StateCanceled {
					t.Fatalf("%s: terminal state %q, want canceled", j.ID, v.State)
				}
				if v.Error == "canceled while queued" && v.Records != 1 {
					t.Fatalf("%s: queued-cancel stream has %d records, want 1", j.ID, v.Records)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck in %q", j.ID, v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	snaps, err := s.store.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != rounds {
		t.Fatalf("store holds %d jobs, want %d", len(snaps), rounds)
	}
	for _, snap := range snaps {
		if snap.State != store.StateCanceled {
			t.Fatalf("store snapshot %s: state %q, want canceled", snap.ID, snap.State)
		}
	}
}

// TestKillRestartRecovery is the crash acceptance test: the real binary
// is SIGKILLed mid-batch and restarted against the same -store-dir. The
// finished job must come back byte-identical, the interrupted jobs must
// re-queue and re-run deterministically, and a resubmission of the
// finished spec must be served from the re-seeded cache with the
// simulation counters flat.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ppserved")
	build := exec.Command("go", "build", "-o", bin, "popnaming/cmd/ppserved")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(dir, "store")

	start := func(workers string) (*exec.Cmd, string) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", workers,
			"-store", "wal", "-store-dir", storeDir, "-grace", "5s")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
				addr = strings.Fields(rest)[0]
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("no listening line (scan err %v)", sc.Err())
		}
		go func() {
			for sc.Scan() {
			}
		}()
		return cmd, "http://" + addr
	}
	post := func(base, body string) JobView {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b, _ := json.Marshal(resp.Header)
			t.Fatalf("submit status %d (%s)", resp.StatusCode, b)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	view := func(base, id string) JobView {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	await := func(base, id string, want JobState, d time.Duration) {
		stop := time.Now().Add(d)
		for {
			v := view(base, id)
			if v.State == want {
				return
			}
			if time.Now().After(stop) {
				t.Fatalf("job %s stuck in %q (want %q)", id, v.State, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	results := func(base, id string) []byte {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/results?follow=false")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	promValue := func(base, name string) string {
		resp, err := http.Get(base + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if val, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
				return val
			}
		}
		t.Fatalf("metric %s not exposed", name)
		return ""
	}

	quick1 := `{"kind":"sim","protocol":"asym","p":4,"n":4,"seed":2,"budget":100000}`
	blocker := `{"kind":"sim","protocol":"asym","p":4,"n":4,"seed":3,"budget":274877906944,"faults":"@999999999999:corrupt=1"}`
	quick2 := `{"kind":"sim","protocol":"asym","p":4,"n":4,"seed":5,"budget":100000}`

	cmd, base := start("1")
	defer cmd.Process.Kill()
	j1 := post(base, quick1)
	await(base, j1.ID, StateDone, 30*time.Second)
	body1 := results(base, j1.ID)
	if len(body1) == 0 {
		t.Fatal("finished job streamed no bytes")
	}
	jb := post(base, blocker)
	await(base, jb.ID, StateRunning, 10*time.Second)
	j2 := post(base, quick2)
	if v := view(base, j2.ID); v.State != StateQueued {
		t.Fatalf("third job state %q, want queued at kill time", v.State)
	}
	// SIGKILL: no drain, no flush beyond what the WAL already holds.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Restart with 2 workers: the never-converging blocker is requeued
	// ahead of the quick job, and both must get a worker.
	cmd2, base2 := start("2")
	defer cmd2.Process.Kill()

	// The finished job survived byte-for-byte.
	if v := view(base2, j1.ID); v.State != StateDone || v.Summary == nil || !v.Summary.OK {
		t.Fatalf("restored job view %+v", v)
	}
	if body := results(base2, j1.ID); !bytes.Equal(body, body1) {
		t.Fatalf("restored results differ:\nbefore: %d bytes\nafter:  %d bytes\n%s\nvs\n%s",
			len(body1), len(body), body1, body)
	}
	if got := promValue(base2, "ppserved_jobs_requeued_total"); got != "2" {
		t.Fatalf("ppserved_jobs_requeued_total = %s, want 2", got)
	}

	// The interrupted quick job re-ran deterministically: its stream
	// matches a fresh in-process reference run of the same spec.
	await(base2, j2.ID, StateDone, 30*time.Second)
	_, tsRef := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	status, ref, _, _ := postJob(t, tsRef, quickSpec(5))
	if status != http.StatusAccepted {
		t.Fatalf("reference submit status %d", status)
	}
	waitState(t, tsRef, ref.ID, StateDone, 30*time.Second)
	want := canonStream(t, streamLines(t, tsRef, ref.ID))
	var rerunLines [][]byte
	for _, line := range bytes.Split(bytes.TrimSuffix(results(base2, j2.ID), []byte("\n")), []byte("\n")) {
		rerunLines = append(rerunLines, line)
	}
	got := canonStream(t, rerunLines)
	if len(got) != len(want) {
		t.Fatalf("rerun stream %d canonical records, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rerun record %d differs:\nrerun:     %s\nreference: %s", i, got[i], want[i])
		}
	}

	// The blocker re-queued too; cancel it so the server can drain.
	await(base2, jb.ID, StateRunning, 20*time.Second)
	resp, err := http.Post(base2+"/v1/jobs/"+jb.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	await(base2, jb.ID, StateCanceled, 30*time.Second)

	// The cache was repopulated from the WAL: resubmitting the finished
	// spec is a hit, served without a single new interaction.
	steps0 := promValue(base2, "ppserved_interactions_total")
	hit := post(base2, quick1)
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("post-restart resubmission state=%q cached=%v, want done/true", hit.State, hit.Cached)
	}
	if steps := promValue(base2, "ppserved_interactions_total"); steps != steps0 {
		t.Fatalf("cache hit re-simulated after restart: interactions %s -> %s", steps0, steps)
	}

	if err := cmd2.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd2.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("ppserved exited non-zero after recovery: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ppserved did not exit")
	}
}

// benchAdmitCold measures the end-to-end cold path — admission, queue,
// simulation, finalization — per job, with a fresh seed each iteration
// so the cache never short-circuits it.
func benchAdmitCold(b *testing.B, cfg Config) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, jerr := s.Submit(quickSpec(int64(i + 1)))
		if jerr != nil {
			b.Fatal(jerr)
		}
		<-j.ctx.Done() // finalize releases the job context
	}
}

func BenchmarkAdmitColdMemory(b *testing.B) {
	benchAdmitCold(b, Config{Workers: 2, QueueCap: 8})
}

func BenchmarkAdmitColdWAL(b *testing.B) {
	w, err := store.OpenWAL(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	benchAdmitCold(b, Config{Workers: 2, QueueCap: 8, Store: w})
}

// BenchmarkAdmitCacheHit measures the memoized path: the same seeded
// spec, primed once, then answered from the result cache — terminal
// before Submit returns.
func BenchmarkAdmitCacheHit(b *testing.B) {
	s, err := New(Config{Workers: 2, QueueCap: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	j, jerr := s.Submit(quickSpec(7))
	if jerr != nil {
		b.Fatal(jerr)
	}
	<-j.ctx.Done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, jerr := s.Submit(quickSpec(7))
		if jerr != nil {
			b.Fatal(jerr)
		}
		if v := j.view(); !v.Cached || v.State != StateDone {
			b.Fatalf("iteration %d not served from cache: %+v", i, v)
		}
	}
}
