package serve

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"popnaming/internal/obs"
)

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promFamily is one metric family parsed out of an exposition.
type promFamily struct {
	name, typ string
	// samples maps a full sample name (family, family_bucket, ...) plus
	// rendered label set to its value.
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a strict text-format-0.0.4 checker: it fails the test
// on any ordering, naming, escaping or structural violation and
// returns the parsed families.
func parseProm(t *testing.T, body string) []promFamily {
	t.Helper()
	if body == "" || !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition empty or not newline-terminated")
	}
	var fams []promFamily
	seen := make(map[string]bool)
	var cur *promFamily
	pendingHelp := "" // HELP seen, TYPE not yet
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: %s", i+1, line, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingHelp != "" {
				fail("HELP %q not followed by its TYPE", pendingHelp)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, ok := strings.Cut(rest, " ")
			if !ok || doc == "" {
				fail("HELP without docstring")
			}
			if !promNameRe.MatchString(name) {
				fail("invalid metric name %q", name)
			}
			if seen[name] {
				fail("family %q declared twice", name)
			}
			seen[name] = true
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				fail("malformed TYPE")
			}
			name, typ := fields[0], fields[1]
			if name != pendingHelp {
				fail("TYPE %q does not follow its HELP (pending %q)", name, pendingHelp)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail("invalid type %q", typ)
			}
			fams = append(fams, promFamily{name: name, typ: typ})
			cur = &fams[len(fams)-1]
			pendingHelp = ""
		case strings.HasPrefix(line, "#"):
			fail("stray comment")
		default:
			if pendingHelp != "" {
				fail("sample before TYPE of %q", pendingHelp)
			}
			if cur == nil {
				fail("sample before any family")
			}
			s := parsePromSample(t, i+1, line)
			// Samples must belong to the family just declared: the
			// family name itself, or its histogram series suffixes.
			okNames := map[string]bool{cur.name: true}
			if cur.typ == "histogram" {
				okNames[cur.name+"_bucket"] = true
				okNames[cur.name+"_sum"] = true
				okNames[cur.name+"_count"] = true
			}
			if !okNames[s.name] {
				fail("sample %q under family %q (%s)", s.name, cur.name, cur.typ)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	if pendingHelp != "" {
		t.Fatalf("trailing HELP %q without TYPE", pendingHelp)
	}
	for _, f := range fams {
		if len(f.samples) == 0 {
			t.Errorf("family %q has no samples", f.name)
		}
		if f.typ == "histogram" {
			checkPromHistogram(t, f)
		}
	}
	return fams
}

// parsePromSample parses one `name{labels} value` line.
func parsePromSample(t *testing.T, lineno int, line string) promSample {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("line %d %q: %s", lineno, line, fmt.Sprintf(format, args...))
	}
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		fail("no value")
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		fail("invalid sample name %q", s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			fail("unterminated label set")
		}
		for _, pair := range splitPromLabels(t, lineno, line, rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !promLabelRe.MatchString(k) {
				fail("bad label pair %q", pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				fail("unquoted label value %q", v)
			}
			if _, dup := s.labels[k]; dup {
				fail("duplicate label %q", k)
			}
			s.labels[k] = unescapePromLabel(t, lineno, line, v[1:len(v)-1])
		}
		rest = rest[end+1:]
	}
	valueStr := strings.TrimPrefix(rest, " ")
	if valueStr == rest || valueStr == "" || strings.Contains(valueStr, " ") {
		fail("malformed value %q", rest)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		fail("unparsable value %q: %v", valueStr, err)
	}
	s.value = v
	return s
}

// splitPromLabels splits a label body on commas outside quotes.
func splitPromLabels(t *testing.T, lineno int, line, body string) []string {
	t.Helper()
	if body == "" {
		return nil
	}
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if inQuote {
		t.Fatalf("line %d %q: unterminated quote in labels", lineno, line)
	}
	return append(out, body[start:])
}

// unescapePromLabel validates and unescapes a label value: only \\,
// \" and \n escapes are legal, and no raw control bytes.
func unescapePromLabel(t *testing.T, lineno int, line, v string) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\n' {
			t.Fatalf("line %d %q: raw newline in label value", lineno, line)
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			t.Fatalf("line %d %q: trailing backslash in label value", lineno, line)
		}
		switch v[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			t.Fatalf("line %d %q: invalid escape \\%c in label value", lineno, line, v[i])
		}
	}
	return sb.String()
}

// checkPromHistogram verifies every series of a histogram family: le
// bounds strictly increasing, bucket counts cumulative (non-
// decreasing), a mandatory +Inf bucket, and _sum/_count present with
// _count equal to the +Inf bucket.
func checkPromHistogram(t *testing.T, f promFamily) {
	t.Helper()
	type series struct {
		les     []float64
		counts  []float64
		inf     float64
		infSeen bool
		sum     float64
		sumSeen bool
		cnt     float64
		cntSeen bool
	}
	key := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	all := make(map[string]*series)
	get := func(labels map[string]string) *series {
		k := key(labels)
		if all[k] == nil {
			all[k] = &series{}
		}
		return all[k]
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket sample without le label", f.name)
			}
			sr := get(s.labels)
			if le == "+Inf" {
				sr.inf, sr.infSeen = s.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: unparsable le %q", f.name, le)
			}
			sr.les = append(sr.les, bound)
			sr.counts = append(sr.counts, s.value)
		case f.name + "_sum":
			sr := get(s.labels)
			sr.sum, sr.sumSeen = s.value, true
		case f.name + "_count":
			sr := get(s.labels)
			sr.cnt, sr.cntSeen = s.value, true
		}
	}
	for k, sr := range all {
		name := f.name
		if k != "" {
			name += "{" + k + "}"
		}
		if !sr.infSeen {
			t.Errorf("%s: no +Inf bucket", name)
			continue
		}
		if !sr.sumSeen || !sr.cntSeen {
			t.Errorf("%s: missing _sum or _count", name)
			continue
		}
		prev := -1.0
		last := 0.0
		for i, le := range sr.les {
			if i > 0 && le <= prev {
				t.Errorf("%s: le bounds not increasing (%g after %g)", name, le, prev)
			}
			prev = le
			if sr.counts[i] < last {
				t.Errorf("%s: bucket counts not cumulative (%g after %g at le=%g)", name, sr.counts[i], last, le)
			}
			last = sr.counts[i]
		}
		if sr.inf < last {
			t.Errorf("%s: +Inf bucket %g below last bucket %g", name, sr.inf, last)
		}
		if sr.cnt != sr.inf {
			t.Errorf("%s: _count %g != +Inf bucket %g", name, sr.cnt, sr.inf)
		}
	}
}

// scrapeProm fetches /metrics?format=prometheus and checks the
// Content-Type.
func scrapeProm(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus content-type %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestPrometheusConformance runs jobs of several kinds, scrapes the
// exposition and holds it to the strict checker plus the required
// family inventory: phase histograms per job kind, runtime gauges,
// span and lifecycle counters.
func TestPrometheusConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	for _, spec := range []Spec{
		{Kind: KindSim, Protocol: "asym", P: 4, N: 4, Seed: 2, Budget: 100_000, Trace: true},
		{Kind: KindBatch, Protocol: "asym", P: 4, N: 4, Seed: 7, Trials: 2, Workers: 1, Budget: 100_000},
	} {
		status, view, _, _ := postJob(t, ts, spec)
		if status != http.StatusAccepted {
			t.Fatalf("submit status %d", status)
		}
		streamLines(t, ts, view.ID)
		waitState(t, ts, view.ID, StateDone, 30*time.Second)
	}

	body := scrapeProm(t, ts.URL)
	fams := parseProm(t, body)
	byName := make(map[string]promFamily, len(fams))
	for _, f := range fams {
		byName[f.name] = f
	}

	wantTyped := map[string]string{
		"ppserved_uptime_seconds":                    "gauge",
		"ppserved_workers":                           "gauge",
		"ppserved_workers_active":                    "gauge",
		"ppserved_queue_depth":                       "gauge",
		"ppserved_queue_capacity":                    "gauge",
		"ppserved_queue_high_watermark":              "gauge",
		"ppserved_draining":                          "gauge",
		"ppserved_ready":                             "gauge",
		"ppserved_jobs":                              "gauge",
		"ppserved_jobs_submitted_total":              "counter",
		"ppserved_jobs_rejected_total":               "counter",
		"ppserved_jobs_completed_total":              "counter",
		"ppserved_jobs_failed_total":                 "counter",
		"ppserved_jobs_canceled_total":               "counter",
		"ppserved_spans_total":                       "counter",
		"ppserved_job_wall_milliseconds":             "histogram",
		"ppserved_job_queue_wait_microseconds":       "histogram",
		"ppserved_job_exec_milliseconds":             "histogram",
		"ppserved_job_stream_milliseconds":           "histogram",
		"ppserved_http_requests_total":               "counter",
		"ppserved_http_request_latency_microseconds": "histogram",
		"ppserved_trials_total":                      "counter",
		"ppserved_trials_converged_total":            "counter",
		"ppserved_interactions_total":                "counter",
		"ppserved_interactions_non_null_total":       "counter",
		"go_goroutines":                              "gauge",
		"go_heap_alloc_bytes":                        "gauge",
		"go_heap_objects":                            "gauge",
		"go_gc_cycles_total":                         "counter",
		"go_gc_pause_seconds_total":                  "counter",
	}
	for name, typ := range wantTyped {
		f, ok := byName[name]
		if !ok {
			t.Errorf("missing family %q", name)
			continue
		}
		if f.typ != typ {
			t.Errorf("family %q type %q, want %q", name, f.typ, typ)
		}
	}

	// The per-kind phase histograms carry one series per job kind, and
	// the kinds that ran have observations.
	counts := make(map[string]float64)
	for _, s := range byName["ppserved_job_queue_wait_microseconds"].samples {
		if strings.HasSuffix(s.name, "_count") {
			counts[s.labels["kind"]] = s.value
		}
	}
	for _, kind := range jobKinds {
		if _, ok := counts[kind]; !ok {
			t.Errorf("queue-wait histogram missing kind %q", kind)
		}
	}
	if counts[KindSim] < 1 || counts[KindBatch] < 1 {
		t.Errorf("queue-wait counts %v, want sim and batch >= 1", counts)
	}

	// The traced sim job emitted spans, and both jobs completed.
	sampleValue := func(fam string) float64 {
		fs := byName[fam].samples
		if len(fs) != 1 {
			t.Fatalf("family %q has %d samples, want 1", fam, len(fs))
		}
		return fs[0].value
	}
	if v := sampleValue("ppserved_spans_total"); v < 4 {
		t.Errorf("ppserved_spans_total %g, want >= 4", v)
	}
	if v := sampleValue("ppserved_jobs_completed_total"); v != 2 {
		t.Errorf("ppserved_jobs_completed_total %g, want 2", v)
	}
	if v := sampleValue("ppserved_ready"); v != 1 {
		t.Errorf("ppserved_ready %g, want 1", v)
	}
}

// TestPrometheusScrapeRace hammers the prometheus endpoint while a
// traced batch job runs, so the race detector (make race-serve) checks
// scraping against concurrent span emission and metric writes; every
// scrape must still pass the strict checker.
func TestPrometheusScrapeRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	status, view, _, _ := postJob(t, ts, Spec{
		Kind: KindBatch, Protocol: "asym", P: 4, N: 4,
		Seed: 9, Trials: 6, Workers: 2, Budget: 400_000, Trace: true,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				parseProm(t, scrapeProm(t, ts.URL))
			}
		}()
	}
	streamLines(t, ts, view.ID)
	waitState(t, ts, view.ID, StateDone, 60*time.Second)
	close(stop)
	wg.Wait()
	parseProm(t, scrapeProm(t, ts.URL))
}
