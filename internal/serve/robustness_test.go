package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"popnaming/internal/serve/store"
)

// TestRetryAfterClamp pins the Retry-After advice bounds: an empty
// wall-time history answers the 1s floor, and a backlog of pathologically
// slow jobs cannot push the advice past the 300s ceiling.
func TestRetryAfterClamp(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.retryAfterSec(50); got != minRetryAfterSec {
		t.Fatalf("empty history: retryAfterSec = %d, want floor %d", got, minRetryAfterSec)
	}
	s.met.jobWallMS.Observe(10_000_000) // one ~3-hour job
	if got := s.retryAfterSec(1_000_000); got != maxRetryAfterSec {
		t.Fatalf("huge backlog: retryAfterSec = %d, want ceiling %d", got, maxRetryAfterSec)
	}

	// In between the clamps the estimate scales with backlog per worker.
	s2, err := New(Config{Workers: 2, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.met.jobWallMS.Observe(2000)
	if got := s2.retryAfterSec(3); got != 5 { // 2000ms * 4 / 2 workers / 1000 + 1
		t.Fatalf("midrange: retryAfterSec = %d, want 5", got)
	}
}

// TestResultsStreamStalledClient pins the slow-client guard: a reader
// that opens a results stream and never drains it must not pin the
// handler goroutine forever — the per-write deadline fires, the stream
// is dropped, and the timeout counter records it.
func TestResultsStreamStalledClient(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 4,
		StreamWriteTimeout: 200 * time.Millisecond})
	// A stream large enough to overflow the socket buffers between
	// server and a non-reading client (progress doubles the line count).
	spec := Spec{Kind: KindBatch, Protocol: "asym", P: 4, N: 4, Seed: 5,
		Trials: 4000, Workers: 4, Budget: 50_000, ProgressEvery: 1}
	code, v, e, _ := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, error %+v", code, e)
	}
	waitState(t, ts, v.ID, StateDone, 60*time.Second)

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A tiny client receive buffer keeps the kernel from absorbing the
	// stream on the client side, so the server-side write blocks fast.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	fmt.Fprintf(conn, "GET /v1/jobs/%s/results HTTP/1.1\r\nHost: stalled\r\n\r\n", v.ID)

	deadline := time.Now().Add(30 * time.Second)
	for s.met.streamWriteTimeouts.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write deadline never fired for the stalled reader")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// failingStore wraps a working store with an AppendResults that always
// fails, modeling a dead disk under the result spill path.
type failingStore struct {
	*store.Memory
}

func (f *failingStore) AppendResults(id string, lines [][]byte) error {
	return fmt.Errorf("disk gone")
}

// TestStoreWriteFailureFailsJob pins WAL write-error hardening at the
// service level: when every result spill fails, the job must finish
// failed with a structured store error — not done with silently
// missing durability — and the write-error counter must record it.
func TestStoreWriteFailureFailsJob(t *testing.T) {
	fs := &failingStore{Memory: store.NewMemory()}
	// BufferBytes 1 forces a spill on every emitted record.
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4,
		Store: fs, BufferBytes: 1, CacheBytes: -1})
	spec := Spec{Kind: KindBatch, Protocol: "asym", P: 4, N: 4,
		Seed: 7, Trials: 3, Workers: 1, Budget: 200_000}
	code, v, e, _ := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, error %+v", code, e)
	}
	final := waitState(t, ts, v.ID, StateFailed, 30*time.Second)
	if !strings.Contains(final.Error, "disk gone") {
		t.Fatalf("job error %q, want the store failure surfaced", final.Error)
	}
	if s.met.storeWriteErrors.Value() == 0 {
		t.Fatal("store write errors not counted")
	}
}

// longRunningCountSpec is a count-engine job that never converges
// (N > P leaves unique naming unreachable) under an effectively
// unbounded budget — the count analog of longRunningSpec. The engine
// polls for cancellation every 2^14 steps.
func longRunningCountSpec() Spec {
	return Spec{
		Kind: KindSim, Protocol: "asym", P: 4, N: 1000,
		Engine: "count", Seed: 3, Budget: 1 << 38,
	}
}

// TestCountCancelRacePickup drives the cancel-while-queued vs
// worker-pickup race for the count engine (the counterpart of
// TestCancelRacePickup): every job must land terminal canceled in both
// the server's view and the store, whether the cancel beat the pickup
// or interrupted the count loop mid-run.
func TestCountCancelRacePickup(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const rounds = 40
	jobs := make([]*Job, 0, rounds)
	for i := 0; i < rounds; i++ {
		j, jerr := s.Submit(longRunningCountSpec())
		if jerr != nil {
			t.Fatalf("submit %d: %v", i, jerr)
		}
		s.Cancel(j)
		jobs = append(jobs, j)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, j := range jobs {
		for {
			v := j.view()
			if v.State.terminal() {
				if v.State != StateCanceled {
					t.Fatalf("%s: terminal state %q, want canceled", j.ID, v.State)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck in %q", j.ID, v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	snaps, err := s.store.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != rounds {
		t.Fatalf("store holds %d jobs, want %d", len(snaps), rounds)
	}
	for _, snap := range snaps {
		if snap.State != store.StateCanceled {
			t.Fatalf("store snapshot %s: state %q, want canceled", snap.ID, snap.State)
		}
	}
}

// TestMetricsExposeRobustnessCounters pins that the write-error and
// stream-timeout counters appear in both /metrics formats.
func TestMetricsExposeRobustnessCounters(t *testing.T) {
	// A configured (never contacted) peer makes the human-format
	// distributed-leases table render alongside the Prometheus families.
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4,
		Peers: []string{"http://127.0.0.1:1"}})
	for _, format := range []string{"", "?format=prometheus"} {
		resp, err := http.Get(ts.URL + "/metrics" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"store_write_errors", "stream_write_timeouts", "leases_issued", "lease_failures"} {
			if !strings.Contains(string(body), want) {
				t.Fatalf("GET /metrics%s missing %q", format, want)
			}
		}
	}
}
