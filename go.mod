module popnaming

go 1.22
