package main

import (
	"strings"
	"testing"

	"popnaming/internal/experiments"
)

func TestEngineSelectionError(t *testing.T) {
	cases := []struct {
		engine, which string
		wantErr       string // substring, "" = accepted
	}{
		{"agent", "all", ""},
		{"agent", "table1", ""},
		{"agent", "countdiff", ""},
		{"count", "all", ""},
		{"count", "countdiff", ""},
		{"count", "countscale", ""},
		{"count", "table1", "needs the agent engine"},
		{"count", "sweep", "needs the agent engine"},
		{"count", "stabilize", "needs the agent engine"},
		{"warp", "all", "unknown engine"},
	}
	for _, c := range cases {
		err := engineSelectionError(c.engine, c.which)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("engineSelectionError(%q, %q) = %v, want accept", c.engine, c.which, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("engineSelectionError(%q, %q) = %v, want error containing %q", c.engine, c.which, err, c.wantErr)
		}
	}
}

// TestEngineSelectionCoversSuite pins the contract the -engine count
// gate relies on: every suite key either runs under count or is
// rejected with the structured flag-parse error — no silent third path.
func TestEngineSelectionCoversSuite(t *testing.T) {
	for _, e := range experiments.Suite() {
		err := engineSelectionError("count", e.Key)
		if experiments.CountCompatible(e.Key) != (err == nil) {
			t.Errorf("key %q: CountCompatible=%v but engineSelectionError=%v", e.Key, experiments.CountCompatible(e.Key), err)
		}
	}
}
