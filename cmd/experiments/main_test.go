package main

import (
	"strings"
	"testing"

	"popnaming/internal/experiments"
)

func TestEngineSelectionError(t *testing.T) {
	cases := []struct {
		engine, which string
		wantErr       string // substring, "" = accepted
	}{
		{"agent", "all", ""},
		{"agent", "table1", ""},
		{"agent", "countdiff", ""},
		{"count", "all", ""},
		{"count", "countdiff", ""},
		{"count", "countscale", ""},
		{"count", "table1", "needs the agent engine"},
		{"count", "sweep", "needs the agent engine"},
		{"count", "stabilize", "needs the agent engine"},
		{"warp", "all", "unknown engine"},
	}
	for _, c := range cases {
		err := engineSelectionError(c.engine, c.which)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("engineSelectionError(%q, %q) = %v, want accept", c.engine, c.which, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("engineSelectionError(%q, %q) = %v, want error containing %q", c.engine, c.which, err, c.wantErr)
		}
	}
}

// TestEngineSelectionCoversSuite pins the contract the -engine count
// gate relies on: every suite key either runs under count or is
// rejected with the structured flag-parse error — no silent third path.
func TestEngineSelectionCoversSuite(t *testing.T) {
	for _, e := range experiments.Suite() {
		err := engineSelectionError("count", e.Key)
		if experiments.CountCompatible(e.Key) != (err == nil) {
			t.Errorf("key %q: CountCompatible=%v but engineSelectionError=%v", e.Key, experiments.CountCompatible(e.Key), err)
		}
	}
}

// TestListSuite pins the -list output: every registry entry appears
// with its tag and engine compatibility, and only the two
// count-compatible experiments advertise the count engine.
func TestListSuite(t *testing.T) {
	var b strings.Builder
	listSuite(&b)
	out := b.String()
	countRows := 0
	for _, e := range experiments.Suite() {
		if !strings.Contains(out, e.Key) || !strings.Contains(out, e.Tag) || !strings.Contains(out, e.Description) {
			t.Errorf("entry %s (%s) missing from listing:\n%s", e.Key, e.Tag, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "agent, count") {
			countRows++
		}
	}
	if countRows != 2 {
		t.Errorf("%d rows advertise the count engine, want 2 (countdiff, countscale)", countRows)
	}
}
