// Command experiments runs the paper-reproduction experiment suite
// (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
// outcomes):
//
//	experiments table1         Table 1 feasibility/state-space matrix (E1)
//	experiments sweep          convergence cost vs N, all protocols (E12)
//	experiments fullpop        Protocol 3 N=P cost blow-up (E12b)
//	experiments recovery       corruption / re-convergence (E13)
//	experiments ablation       U* vs naive sequence (E14)
//	experiments separation     weak vs global fairness on Protocol 3 (E11)
//	experiments slack          time price of exact space optimality (E15)
//	experiments resetablation  Protocol 2 without its reset line (E16)
//	experiments exact          exact expected convergence times (E17)
//	experiments thm11          Theorem 11 beyond model-checkable sizes (E18)
//	experiments trajectory     convergence trajectories (E19)
//	experiments distribution   exact convergence-time distributions (E20)
//	experiments oracle         constructive proof schedules (E21)
//	experiments all            everything above
//
// With -json the selected experiments are emitted as one JSON document
// on stdout instead of rendered tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"popnaming/internal/experiments"
)

// results accumulates the structured outputs for -json mode. Fields are
// nil when the corresponding experiment was not selected.
type results struct {
	Table1        []experiments.Cell               `json:"table1,omitempty"`
	Sweeps        []experiments.SweepResult        `json:"sweeps,omitempty"`
	FullPop       *experiments.SweepResult         `json:"fullPopulation,omitempty"`
	Recovery      []experiments.RecoveryResult     `json:"recovery,omitempty"`
	UStarAblation *experiments.AblationResult      `json:"ustarAblation,omitempty"`
	Separation    *experiments.SeparationResult    `json:"fairnessSeparation,omitempty"`
	Slack         []experiments.SlackResult        `json:"slack,omitempty"`
	ResetAblation *experiments.ResetAblationResult `json:"resetAblation,omitempty"`
	Exact         []experiments.ExactPoint         `json:"exactTimes,omitempty"`
	Thm11         []experiments.Thm11Point         `json:"thm11Scaling,omitempty"`
	Trajectories  []experiments.Trajectory         `json:"trajectories,omitempty"`
	Distributions []experiments.DistPoint          `json:"distributions,omitempty"`
	Oracle        []experiments.OraclePoint        `json:"oracleSchedules,omitempty"`
}

func main() {
	var (
		seed   = flag.Int64("seed", 1, "random seed")
		p      = flag.Int("p", 6, "population bound for table1 simulation checks")
		mcp    = flag.Int("mcp", 3, "population bound for exhaustive model checks")
		maxP   = flag.Int("maxp", 4, "largest P for the full-population cost probe")
		asJSON = flag.Bool("json", false, "emit structured JSON instead of tables")
	)
	flag.Parse()

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	switch which {
	case "all", "table1", "sweep", "fullpop", "recovery", "ablation", "separation", "slack", "resetablation", "exact", "thm11", "trajectory", "distribution", "oracle":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		os.Exit(2)
	}

	ok := true
	runAll := which == "all"
	var out results

	if runAll || which == "table1" {
		cells := experiments.Table1(experiments.Table1Options{P: *p, ModelCheckP: *mcp, Seed: *seed})
		out.Table1 = cells
		if !*asJSON {
			experiments.RenderTable1(os.Stdout, cells)
			fmt.Println()
		}
		for _, c := range cells {
			if !c.OK {
				ok = false
			}
		}
	}
	if runAll || which == "sweep" {
		out.Sweeps = experiments.StandardSweeps(*seed)
		if !*asJSON {
			experiments.RenderSweeps(os.Stdout, out.Sweeps)
			fmt.Println()
		}
	}
	if runAll || which == "fullpop" {
		fp := experiments.FullPopulationCost(*seed, *maxP)
		out.FullPop = &fp
		if !*asJSON {
			experiments.RenderSweeps(os.Stdout, []experiments.SweepResult{fp})
			fmt.Println()
		}
	}
	if runAll || which == "recovery" {
		out.Recovery = experiments.StandardRecovery(*seed)
		if !*asJSON {
			experiments.RenderRecovery(os.Stdout, out.Recovery)
			fmt.Println()
		}
	}
	if runAll || which == "ablation" {
		ab := experiments.UStarAblation(3)
		out.UStarAblation = &ab
		if !*asJSON {
			experiments.RenderAblation(os.Stdout, ab)
			fmt.Println()
		}
	}
	if runAll || which == "separation" {
		sep := experiments.FairnessSeparation(3, *seed)
		out.Separation = &sep
		if !*asJSON {
			experiments.RenderSeparation(os.Stdout, sep)
			fmt.Println()
		}
	}
	if runAll || which == "slack" {
		out.Slack = experiments.StandardSlack(*seed)
		if !*asJSON {
			experiments.RenderSlack(os.Stdout, out.Slack)
			fmt.Println()
		}
	}
	if runAll || which == "resetablation" {
		ra := experiments.ResetAblation(2)
		out.ResetAblation = &ra
		if !*asJSON {
			experiments.RenderResetAblation(os.Stdout, ra)
			fmt.Println()
		}
	}
	if runAll || which == "exact" {
		out.Exact = experiments.ExactTimes()
		if !*asJSON {
			experiments.RenderExact(os.Stdout, out.Exact)
			fmt.Println()
		}
	}
	if runAll || which == "thm11" {
		out.Thm11 = experiments.Thm11Scaling(6, 500_000, *seed)
		if !*asJSON {
			experiments.RenderThm11(os.Stdout, out.Thm11)
			fmt.Println()
		}
	}
	if runAll || which == "trajectory" {
		out.Trajectories = experiments.StandardTrajectories(*seed)
		if !*asJSON {
			experiments.RenderTrajectories(os.Stdout, out.Trajectories)
			fmt.Println()
		}
	}
	if runAll || which == "distribution" {
		out.Distributions = experiments.Distributions(2000, *seed)
		if !*asJSON {
			experiments.RenderDistributions(os.Stdout, out.Distributions)
			fmt.Println()
		}
	}
	if runAll || which == "oracle" {
		out.Oracle = experiments.OracleSchedules(*seed)
		if !*asJSON {
			experiments.RenderOracle(os.Stdout, out.Oracle)
			fmt.Println()
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "experiments: some Table 1 cells disagree with the paper")
		os.Exit(1)
	}
}
