// Command experiments runs the paper-reproduction experiment suite
// (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
// outcomes):
//
//	experiments table1         Table 1 feasibility/state-space matrix (E1)
//	experiments sweep          convergence cost vs N, all protocols (E12)
//	experiments fullpop        Protocol 3 N=P cost blow-up (E12b)
//	experiments recovery       corruption / re-convergence (E13)
//	experiments ablation       U* vs naive sequence (E14)
//	experiments separation     weak vs global fairness on Protocol 3 (E11)
//	experiments slack          time price of exact space optimality (E15)
//	experiments resetablation  Protocol 2 without its reset line (E16)
//	experiments exact          exact expected convergence times (E17)
//	experiments thm11          Theorem 11 beyond model-checkable sizes (E18)
//	experiments trajectory     convergence trajectories (E19)
//	experiments distribution   exact convergence-time distributions (E20)
//	experiments oracle         constructive proof schedules (E21)
//	experiments stabilize      multi-epoch fault injection / re-convergence (E22)
//	experiments countdiff      count vs agent engine KS differential (E23)
//	experiments countscale     count-engine throughput at N = 10^3…10^8 (E24)
//	experiments all            everything above
//
// -engine selects the execution engine the suite may assume: "agent"
// (default) runs everything; "count" restricts the suite to the
// count-compatible experiments (countdiff, countscale) — "all" then
// means exactly those two, and explicitly selecting an experiment that
// needs identity-dependent machinery (agent schedulers, fairness
// audits, targeted faults, state-graph exploration) is rejected at
// flag-parse time, naming the incompatibility.
//
// With -json the selected experiments are emitted as one JSON document
// on stdout instead of rendered tables (including a "timings" section
// with per-experiment wall-clock times and tags).
//
// The stabilize experiment runs under supervision (see
// docs/robustness.md): -faults overrides its default per-epoch
// corruption plan, -deadline bounds each protocol's batch wall clock,
// and -retries grants stalled trials fresh derived-seed attempts.
//
// Observability (see docs/observability.md): -journal records one
// "experiment" line per experiment run (plus "fault" lines from the
// stabilize experiment), -metrics prints the timing table,
// -progress-every 1 announces each experiment on stderr as it
// completes, and -pprof captures CPU/heap profiles. The seed actually
// used is always reported, including when -seed 0 auto-derives one.
//
// SIGINT interrupts the suite cleanly: in-flight supervised work is
// aborted and journaled as such, remaining experiments are journaled
// as skipped, the journal is flushed, and the process exits 130. A
// second SIGINT kills the process immediately.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"popnaming/internal/experiments"
	"popnaming/internal/fault"
	"popnaming/internal/obs"
	"popnaming/internal/report"
)

// results accumulates the structured outputs for -json mode. Fields are
// nil when the corresponding experiment was not selected.
type results struct {
	Seed          int64                            `json:"seed"`
	Table1        []experiments.Cell               `json:"table1,omitempty"`
	Sweeps        []experiments.SweepResult        `json:"sweeps,omitempty"`
	FullPop       *experiments.SweepResult         `json:"fullPopulation,omitempty"`
	Recovery      []experiments.RecoveryResult     `json:"recovery,omitempty"`
	UStarAblation *experiments.AblationResult      `json:"ustarAblation,omitempty"`
	Separation    *experiments.SeparationResult    `json:"fairnessSeparation,omitempty"`
	Slack         []experiments.SlackResult        `json:"slack,omitempty"`
	ResetAblation *experiments.ResetAblationResult `json:"resetAblation,omitempty"`
	Exact         []experiments.ExactPoint         `json:"exactTimes,omitempty"`
	Thm11         []experiments.Thm11Point         `json:"thm11Scaling,omitempty"`
	Trajectories  []experiments.Trajectory         `json:"trajectories,omitempty"`
	Distributions []experiments.DistPoint          `json:"distributions,omitempty"`
	Oracle        []experiments.OraclePoint        `json:"oracleSchedules,omitempty"`
	Stabilize     []experiments.StabilizeResult    `json:"stabilize,omitempty"`
	CountDiff     []experiments.CountDiffPoint     `json:"countDifferential,omitempty"`
	CountScale    *experiments.CountScaleResult    `json:"countScale,omitempty"`
	Timings       []obs.ExperimentRec              `json:"timings,omitempty"`
}

// listSuite renders the suite registry: one row per experiment with
// its DESIGN.md tag, CLI selector, compatible engines and description.
func listSuite(w io.Writer) {
	tab := report.NewTable("experiment suite (run with: experiments <key>)",
		"tag", "key", "engines", "description")
	for _, e := range experiments.Suite() {
		engines := "agent"
		if experiments.CountCompatible(e.Key) {
			engines = "agent, count"
		}
		tab.AddRow(e.Tag, e.Key, engines, e.Description)
	}
	tab.Render(w)
}

// engineSelectionError rejects engine/experiment combinations at
// flag-parse time: an unknown engine name, or an explicitly selected
// experiment that the count engine cannot run.
func engineSelectionError(engine, which string) error {
	switch engine {
	case "agent":
		return nil
	case "count":
		if which == "all" || experiments.CountCompatible(which) {
			return nil
		}
		return fmt.Errorf("experiment %q needs the agent engine (identity-dependent machinery); -engine count supports: countdiff countscale", which)
	default:
		return fmt.Errorf("unknown engine %q (agent | count)", engine)
	}
}

// suiteRunner times each selected experiment, journals it, and keeps
// the timing records for the -metrics table and -json output.
type suiteRunner struct {
	sink     *obs.JournalSink
	progress int
	timings  []obs.ExperimentRec
	ok       bool
	// interrupted reports whether SIGINT arrived; once true, run skips
	// every remaining experiment but still journals it as skipped, so
	// the partial journal says exactly what did and did not happen.
	interrupted func() bool
}

// run executes the experiment registered under key. body returns
// whether the experiment's checks passed.
func (sr *suiteRunner) run(key string, body func() bool) {
	entry, _ := experiments.SuiteLookup(key)
	if sr.interrupted != nil && sr.interrupted() {
		rec := obs.NewExperimentRec(key, entry.Tag, false, 0)
		rec.Skipped = true
		rec.Detail = "skipped: interrupted"
		sr.timings = append(sr.timings, rec)
		if sr.sink != nil {
			sr.sink.Emit(rec)
		}
		return
	}
	start := time.Now()
	ok := body()
	rec := obs.NewExperimentRec(key, entry.Tag, ok, time.Since(start).Nanoseconds())
	rec.Detail = entry.Description
	sr.timings = append(sr.timings, rec)
	if sr.sink != nil {
		sr.sink.Emit(rec)
	}
	if sr.progress > 0 && len(sr.timings)%sr.progress == 0 {
		fmt.Fprintf(os.Stderr, "experiments: %s (%s) done in %v\n",
			key, entry.Tag, time.Duration(rec.WallNS).Round(time.Millisecond))
	}
	if !ok {
		sr.ok = false
	}
}

func (sr *suiteRunner) dump(w *os.File) {
	t := report.NewTable("experiment timings", "experiment", "tag", "ok", "wall")
	var total time.Duration
	for _, r := range sr.timings {
		d := time.Duration(r.WallNS)
		total += d
		t.AddRowf(r.Key, r.Tag, r.OK, d.Round(time.Millisecond))
	}
	t.AddRowf("total", "", sr.ok, total.Round(time.Millisecond))
	t.Render(w)
}

func main() {
	var (
		seedFlag = flag.Int64("seed", 1, "random seed (0: auto-derive from the clock; the seed used is reported)")
		p        = flag.Int("p", 6, "population bound for table1 simulation checks")
		mcp      = flag.Int("mcp", 3, "population bound for exhaustive model checks")
		maxP     = flag.Int("maxp", 4, "largest P for the full-population cost probe")
		asJSON   = flag.Bool("json", false, "emit structured JSON instead of tables")
		journal  = flag.String("journal", "", "write a JSONL run journal to this file (see docs/observability.md)")
		metrics  = flag.Bool("metrics", false, "print the per-experiment timing table")
		progress = flag.Int("progress-every", 0, "announce every k-th completed experiment on stderr (0: off)")
		pprofPfx = flag.String("pprof", "", "write CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		faults   = flag.String("faults", "", "fault plan for the stabilize experiment, e.g. '@conv:corrupt=2,@conv:crash=1' (default: 3 epochs of @conv:corrupt=2)")
		deadline = flag.Duration("deadline", 0, "wall-clock deadline per stabilize batch (0: none)")
		retries  = flag.Int("retries", 0, "stall-retry allowance per stabilize trial")
		engine   = flag.String("engine", "agent", "execution engine: agent | count (count restricts the suite to count-compatible experiments)")
		list     = flag.Bool("list", false, "list the experiment suite (tag, selector, engines, description) and exit")
	)
	flag.Parse()

	if *list {
		listSuite(os.Stdout)
		return
	}

	var faultPlan *fault.Plan
	if *faults != "" {
		pl, perr := fault.Parse(*faults)
		if perr != nil {
			var pe *fault.ParseError
			if errors.As(perr, &pe) {
				fmt.Fprintf(os.Stderr, "experiments: -faults: bad %s at offset %d: token %q: %s\n",
					pe.Kind, pe.Offset, pe.Token, pe.Reason)
			} else {
				fmt.Fprintln(os.Stderr, "experiments: -faults:", perr)
			}
			os.Exit(2)
		}
		faultPlan = pl
	}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if which != "all" {
		if _, found := experiments.SuiteLookup(which); !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want all | %v)\n",
				which, experiments.SuiteKeys())
			os.Exit(2)
		}
	}
	if err := engineSelectionError(*engine, which); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -engine:", err)
		os.Exit(2)
	}

	seed, derived := obs.ResolveSeed(*seedFlag)
	seedOut := os.Stdout
	if *asJSON {
		seedOut = os.Stderr
	}
	note := ""
	if derived {
		note = " (auto-derived)"
	}
	fmt.Fprintf(seedOut, "experiments: seed %d%s\n", seed, note)

	if *pprofPfx != "" {
		stop, perr := obs.StartPprof(*pprofPfx)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
			os.Exit(1)
		}
		defer func() {
			if serr := stop(); serr != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", serr)
			}
		}()
	}

	// First SIGINT sets the flag: supervised work aborts at its next
	// check, remaining experiments are skipped, and the journal is
	// flushed before exiting 130. Stopping signal delivery after the
	// first one restores the default disposition, so a second SIGINT
	// kills the process the ordinary way.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		interrupted.Store(true)
		signal.Stop(sigc)
		fmt.Fprintln(os.Stderr, "experiments: interrupt — finishing up, flushing journal (^C again to kill)")
	}()

	sr := &suiteRunner{progress: *progress, ok: true, interrupted: interrupted.Load}
	var closeJournal func() error
	if *journal != "" {
		s, closeFn, jerr := obs.OpenJournal(*journal)
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", jerr)
			os.Exit(1)
		}
		sr.sink = s
		closeJournal = closeFn
		hdr := obs.NewHeader("experiments")
		hdr.P = *p
		hdr.Seed = seed
		hdr.SeedDerived = derived
		sr.sink.Emit(hdr)
	}

	runAll := which == "all"
	// sel gates each experiment: selected by name or by "all", minus
	// whatever the chosen engine cannot run (under -engine count, "all"
	// shrinks to the count-compatible experiments).
	sel := func(key string) bool {
		if *engine == "count" && !experiments.CountCompatible(key) {
			return false
		}
		return runAll || which == key
	}
	out := results{Seed: seed}

	if sel("table1") {
		sr.run("table1", func() bool {
			cells := experiments.Table1(experiments.Table1Options{P: *p, ModelCheckP: *mcp, Seed: seed})
			out.Table1 = cells
			if !*asJSON {
				experiments.RenderTable1(os.Stdout, cells)
				fmt.Println()
			}
			for _, c := range cells {
				if !c.OK {
					return false
				}
			}
			return true
		})
	}
	if sel("sweep") {
		sr.run("sweep", func() bool {
			out.Sweeps = experiments.StandardSweeps(seed)
			if !*asJSON {
				experiments.RenderSweeps(os.Stdout, out.Sweeps)
				fmt.Println()
			}
			return true
		})
	}
	if sel("fullpop") {
		sr.run("fullpop", func() bool {
			fp := experiments.FullPopulationCost(seed, *maxP)
			out.FullPop = &fp
			if !*asJSON {
				experiments.RenderSweeps(os.Stdout, []experiments.SweepResult{fp})
				fmt.Println()
			}
			return true
		})
	}
	if sel("recovery") {
		sr.run("recovery", func() bool {
			out.Recovery = experiments.StandardRecovery(seed)
			if !*asJSON {
				experiments.RenderRecovery(os.Stdout, out.Recovery)
				fmt.Println()
			}
			return true
		})
	}
	if sel("ablation") {
		sr.run("ablation", func() bool {
			ab := experiments.UStarAblation(3)
			out.UStarAblation = &ab
			if !*asJSON {
				experiments.RenderAblation(os.Stdout, ab)
				fmt.Println()
			}
			return true
		})
	}
	if sel("separation") {
		sr.run("separation", func() bool {
			sep := experiments.FairnessSeparation(3, seed)
			out.Separation = &sep
			if !*asJSON {
				experiments.RenderSeparation(os.Stdout, sep)
				fmt.Println()
			}
			return true
		})
	}
	if sel("slack") {
		sr.run("slack", func() bool {
			out.Slack = experiments.StandardSlack(seed)
			if !*asJSON {
				experiments.RenderSlack(os.Stdout, out.Slack)
				fmt.Println()
			}
			return true
		})
	}
	if sel("resetablation") {
		sr.run("resetablation", func() bool {
			ra := experiments.ResetAblation(2)
			out.ResetAblation = &ra
			if !*asJSON {
				experiments.RenderResetAblation(os.Stdout, ra)
				fmt.Println()
			}
			return true
		})
	}
	if sel("exact") {
		sr.run("exact", func() bool {
			out.Exact = experiments.ExactTimes()
			if !*asJSON {
				experiments.RenderExact(os.Stdout, out.Exact)
				fmt.Println()
			}
			return true
		})
	}
	if sel("thm11") {
		sr.run("thm11", func() bool {
			out.Thm11 = experiments.Thm11Scaling(6, 500_000, seed)
			if !*asJSON {
				experiments.RenderThm11(os.Stdout, out.Thm11)
				fmt.Println()
			}
			return true
		})
	}
	if sel("trajectory") {
		sr.run("trajectory", func() bool {
			out.Trajectories = experiments.StandardTrajectories(seed)
			if !*asJSON {
				experiments.RenderTrajectories(os.Stdout, out.Trajectories)
				fmt.Println()
			}
			return true
		})
	}
	if sel("distribution") {
		sr.run("distribution", func() bool {
			out.Distributions = experiments.Distributions(2000, seed)
			if !*asJSON {
				experiments.RenderDistributions(os.Stdout, out.Distributions)
				fmt.Println()
			}
			return true
		})
	}
	if sel("oracle") {
		sr.run("oracle", func() bool {
			out.Oracle = experiments.OracleSchedules(seed)
			if !*asJSON {
				experiments.RenderOracle(os.Stdout, out.Oracle)
				fmt.Println()
			}
			return true
		})
	}
	if sel("stabilize") {
		sr.run("stabilize", func() bool {
			opts := experiments.StabilizeOptions{
				Seed:      seed,
				Plan:      faultPlan,
				Deadline:  *deadline,
				Retries:   *retries,
				Interrupt: interrupted.Load,
			}
			if sr.sink != nil {
				opts.Sink = sr.sink
			}
			out.Stabilize = experiments.StabilizeAll(*p, opts)
			if !*asJSON {
				experiments.RenderStabilize(os.Stdout, out.Stabilize)
				fmt.Println()
			}
			if interrupted.Load() {
				return false
			}
			for _, res := range out.Stabilize {
				if !res.OK {
					return false
				}
			}
			return len(out.Stabilize) > 0
		})
	}
	if sel("countdiff") {
		sr.run("countdiff", func() bool {
			out.CountDiff = experiments.CountDifferential(experiments.CountDiffOptions{Seed: seed})
			if !*asJSON {
				experiments.RenderCountDiff(os.Stdout, out.CountDiff)
				fmt.Println()
			}
			for _, pt := range out.CountDiff {
				if !pt.OK {
					return false
				}
			}
			return len(out.CountDiff) > 0
		})
	}
	if sel("countscale") {
		sr.run("countscale", func() bool {
			cs := experiments.CountScale(experiments.CountScaleOptions{Seed: seed})
			out.CountScale = &cs
			if !*asJSON {
				experiments.RenderCountScale(os.Stdout, cs)
				fmt.Println()
			}
			return len(cs.Points) > 0
		})
	}
	out.Timings = sr.timings

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		sr.dump(seedOut)
	}
	if closeJournal != nil {
		if err := closeJournal(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: journal:", err)
			os.Exit(1)
		}
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; partial results journaled")
		os.Exit(130)
	}
	if !sr.ok {
		fmt.Fprintln(os.Stderr, "experiments: some experiment checks failed")
		os.Exit(1)
	}
}
