// Command table1 regenerates Table 1 of "Space-Optimal Naming in
// Population Protocols": for each combination of leader assumption and
// rule/fairness class it runs the corresponding space-optimal protocol
// to convergence (checking the exact state count) or executes the
// paper's impossibility construction, then prints the reproduced table.
// The exit status is non-zero if any cell disagrees with the paper.
//
// Observability (see docs/observability.md): -journal records one
// "experiment" line per verified cell, -metrics prints a per-cell
// timing table, -progress-every k reports every k-th cell on stderr,
// and -pprof captures CPU/heap profiles. The seed actually used is
// always printed (and journaled), including when -seed 0 auto-derives
// one from the clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"popnaming/internal/experiments"
	"popnaming/internal/obs"
	"popnaming/internal/report"
)

func main() {
	var (
		p        = flag.Int("p", 6, "population bound P for simulation checks")
		mcp      = flag.Int("mcp", 3, "population bound for exhaustive model checks (state spaces grow exponentially)")
		budget   = flag.Int("budget", 20_000_000, "per-run interaction budget")
		workers  = flag.Int("workers", 1, "worker goroutines for exhaustive searches and model checks (1 = sequential)")
		seedFlag = flag.Int64("seed", 1, "random seed (0: auto-derive from the clock; the seed used is printed)")
		journal  = flag.String("journal", "", "write a JSONL run journal to this file (see docs/observability.md)")
		metrics  = flag.Bool("metrics", false, "print a per-cell timing table after the reproduction")
		progress = flag.Int("progress-every", 0, "report every k-th verified cell on stderr (0: off)")
		pprofPfx = flag.String("pprof", "", "write CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()

	seed, derived := obs.ResolveSeed(*seedFlag)
	if err := run(*p, *mcp, *budget, *workers, seed, derived, *journal, *metrics, *progress, *pprofPfx); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(p, mcp, budget, workers int, seed int64, derived bool, journal string, metrics bool, progress int, pprofPfx string) (err error) {
	if pprofPfx != "" {
		stop, perr := obs.StartPprof(pprofPfx)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil {
				fmt.Fprintln(os.Stderr, "table1: pprof:", serr)
			}
		}()
	}

	var sink *obs.JournalSink
	if journal != "" {
		s, closeFn, jerr := obs.OpenJournal(journal)
		if jerr != nil {
			return jerr
		}
		sink = s
		defer func() {
			if cerr := closeFn(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	note := ""
	if derived {
		note = " (auto-derived)"
	}
	fmt.Printf("reproducing Table 1: P=%d, model-check P=%d, budget %d, seed %d%s\n\n",
		p, mcp, budget, seed, note)
	if sink != nil {
		hdr := obs.NewHeader("table1")
		hdr.P = p
		hdr.Budget = budget
		hdr.Workers = workers
		hdr.Seed = seed
		hdr.SeedDerived = derived
		if herr := sink.Emit(hdr); herr != nil {
			return herr
		}
	}

	start := time.Now()
	cells := experiments.Table1(experiments.Table1Options{
		P: p, ModelCheckP: mcp, Budget: budget, Seed: seed, Workers: workers,
		OnCell: func(i int, c experiments.Cell) {
			if sink != nil {
				rec := obs.NewExperimentRec(
					fmt.Sprintf("table1/%s/%s", c.Leader, c.Rules), "E1", c.OK, c.WallNS)
				rec.Detail = c.Evidence
				sink.Emit(rec)
			}
			if progress > 0 && (i+1)%progress == 0 {
				fmt.Fprintf(os.Stderr, "table1: cell %d/9 (%s / %s) done in %v\n",
					i+1, c.Leader, c.Rules, time.Duration(c.WallNS).Round(time.Millisecond))
			}
		},
	})
	wall := time.Since(start)
	experiments.RenderTable1(os.Stdout, cells)

	bad := 0
	for _, c := range cells {
		if !c.OK {
			bad++
		}
	}
	if metrics {
		fmt.Println()
		t := report.NewTable("cell timings", "leader", "rules", "ok", "wall")
		for _, c := range cells {
			t.AddRowf(c.Leader, c.Rules, c.OK, time.Duration(c.WallNS).Round(time.Millisecond))
		}
		t.AddRowf("total", "", bad == 0, wall.Round(time.Millisecond))
		t.Render(os.Stdout)
	}
	if bad > 0 {
		return fmt.Errorf("%d cell(s) disagree with the paper", bad)
	}
	fmt.Printf("\nall %d cells agree with the paper\n", len(cells))
	return err
}
