// Command table1 regenerates Table 1 of "Space-Optimal Naming in
// Population Protocols": for each combination of leader assumption and
// rule/fairness class it runs the corresponding space-optimal protocol
// to convergence (checking the exact state count) or executes the
// paper's impossibility construction, then prints the reproduced table.
// The exit status is non-zero if any cell disagrees with the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"popnaming/internal/experiments"
)

func main() {
	var (
		p      = flag.Int("p", 6, "population bound P for simulation checks")
		mcp    = flag.Int("mcp", 3, "population bound for exhaustive model checks (state spaces grow exponentially)")
		budget = flag.Int("budget", 20_000_000, "per-run interaction budget")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cells := experiments.Table1(experiments.Table1Options{
		P: *p, ModelCheckP: *mcp, Budget: *budget, Seed: *seed,
	})
	experiments.RenderTable1(os.Stdout, cells)

	bad := 0
	for _, c := range cells {
		if !c.OK {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "table1: %d cell(s) disagree with the paper\n", bad)
		os.Exit(1)
	}
	fmt.Printf("\nall %d cells agree with the paper\n", len(cells))
}
