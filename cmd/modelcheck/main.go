// Command modelcheck decides convergence of a protocol instance exactly,
// by explicit-state exploration: it builds the full reachability graph
// from every configuration in the chosen start set, then checks
// convergence to a valid naming under global fairness (terminal-SCC
// analysis) and under weak fairness (fair-SCC analysis). When the
// weak-fairness check fails it extracts and prints a concrete
// counterexample lasso: a weakly fair schedule that never converges.
// With -exact it additionally solves the induced absorbing Markov chain
// for the exact expected number of interactions to convergence under the
// uniform-random scheduler.
//
// Usage:
//
//	modelcheck -protocol globalp -p 3 -n 3
//	modelcheck -protocol selfstab -p 2 -n 2 -allleaders
//	modelcheck -protocol asym -p 3 -n 3 -exact
//
// Observability (see docs/observability.md): the checker is fully
// deterministic — it uses no randomness, so the journal header carries
// "deterministic":true instead of a seed. -journal records one "stage"
// line per phase (graph build, global check, weak check, exact
// analysis) plus one "explore" record with graph-build metrics
// (nodes/sec, BFS depth, intern hit rate, shard balance), -metrics
// prints the stage timings as a table, and -pprof captures CPU/heap
// profiles. -workers parallelizes the graph build; the graph (and
// every verdict) is identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"popnaming/internal/core"
	"popnaming/internal/experiments"
	"popnaming/internal/explore"
	"popnaming/internal/markov"
	"popnaming/internal/naming"
	"popnaming/internal/obs"
	"popnaming/internal/report"
	"popnaming/internal/seq"
)

func main() {
	var (
		protoKey   = flag.String("protocol", "globalp", "protocol to check (see namesim -list)")
		p          = flag.Int("p", 3, "population bound P")
		n          = flag.Int("n", 0, "population size N (default P)")
		maxNodes   = flag.Int("maxnodes", 1<<21, "state-space cap")
		workers    = flag.Int("workers", 1, "worker goroutines for the graph build (1 = sequential)")
		exact      = flag.Bool("exact", false, "also compute exact expected convergence times")
		allLeaders = flag.Bool("allleaders", false, "start from every leader state in domain (Protocol 2 only)")
		journal    = flag.String("journal", "", "write a JSONL run journal to this file (see docs/observability.md)")
		metrics    = flag.Bool("metrics", false, "print a per-stage timing table after the check")
		pprofPfx   = flag.String("pprof", "", "write CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()
	if err := run(*protoKey, *p, *n, *maxNodes, *workers, *exact, *allLeaders, *journal, *metrics, *pprofPfx); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

// stageTimer journals and accumulates per-phase wall-clock timings.
type stageTimer struct {
	sink   *obs.JournalSink
	stages []obs.StageRec
}

// time runs f, records its duration under name, and returns f's error.
func (st *stageTimer) time(name string, f func() (detail string, err error)) error {
	start := time.Now()
	detail, err := f()
	rec := obs.NewStageRec(name, detail, time.Since(start).Nanoseconds())
	st.stages = append(st.stages, rec)
	if st.sink != nil {
		st.sink.Emit(rec)
	}
	return err
}

func (st *stageTimer) dump(w *os.File) {
	t := report.NewTable("stage timings", "stage", "detail", "wall")
	for _, s := range st.stages {
		t.AddRowf(s.Name, s.Detail, time.Duration(s.WallNS).Round(time.Millisecond))
	}
	t.Render(w)
}

func run(protoKey string, p, n, maxNodes, workers int, exact, allLeaders bool, journal string, metrics bool, pprofPfx string) (err error) {
	spec, err := experiments.Lookup(protoKey)
	if err != nil {
		return err
	}
	if n == 0 {
		n = p
	}
	proto := spec.New(p)

	if pprofPfx != "" {
		stop, perr := obs.StartPprof(pprofPfx)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil {
				fmt.Fprintln(os.Stderr, "modelcheck: pprof:", serr)
			}
		}()
	}

	st := &stageTimer{}
	if journal != "" {
		s, closeFn, jerr := obs.OpenJournal(journal)
		if jerr != nil {
			return jerr
		}
		st.sink = s
		defer func() {
			if cerr := closeFn(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	starts, err := buildStarts(proto, n, allLeaders)
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s (P=%d, %d states), N=%d, %d starting configurations (deterministic, no RNG)\n",
		proto.Name(), p, proto.States(), n, len(starts))

	if st.sink != nil {
		hdr := obs.NewHeader("modelcheck")
		hdr.Protocol = proto.Name()
		hdr.P = p
		hdr.States = proto.States()
		hdr.Leader = core.HasLeader(proto)
		hdr.N = n
		hdr.Workers = workers
		hdr.Deterministic = true
		if herr := st.sink.Emit(hdr); herr != nil {
			return herr
		}
	}

	var g *explore.Graph
	err = st.time("build", func() (string, error) {
		var berr error
		g, berr = explore.Build(proto, starts, explore.Options{MaxNodes: maxNodes, Workers: workers})
		if berr != nil {
			return "", berr
		}
		return fmt.Sprintf("%d configurations, %d transitions, %d workers, depth %d",
			g.Size(), g.EdgeCount(), g.Stats.Workers, g.Stats.Depth), nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("reachable state space: %d configurations, %d transitions (depth %d, %.0f nodes/s, intern hit rate %.3f)\n",
		g.Size(), g.EdgeCount(), g.Stats.Depth, g.Stats.NodesPerSec(), g.Stats.HitRate())
	if st.sink != nil {
		rec := obs.NewExploreRec(proto.Name(), n)
		rec.Workers = g.Stats.Workers
		rec.Nodes = g.Size()
		rec.Edges = g.EdgeCount()
		rec.Depth = g.Stats.Depth
		rec.InternHits = g.Stats.InternHits
		rec.InternMisses = g.Stats.InternMisses
		rec.InternHitRate = g.Stats.HitRate()
		rec.ShardMin, rec.ShardMax = g.Stats.ShardBalance()
		rec.WallNS = g.Stats.WallNS
		rec.NodesPerSec = g.Stats.NodesPerSec()
		if jerr := st.sink.Emit(rec); jerr != nil {
			return jerr
		}
	}

	st.time("check-global", func() (string, error) {
		gv := g.CheckGlobal(explore.Naming)
		fmt.Printf("global fairness: %s\n", gv)
		return fmt.Sprintf("ok=%v", gv.OK), nil
	})

	st.time("check-weak", func() (string, error) {
		wv := g.CheckWeak(explore.Naming)
		fmt.Printf("weak fairness:   %s\n", wv)
		if !wv.OK {
			lasso, lerr := g.ExtractLasso(wv.BadSCC)
			if lerr != nil {
				fmt.Printf("lasso extraction failed: %v\n", lerr)
			} else {
				fmt.Printf("counterexample %s\n", lasso)
				fmt.Printf("  prefix: %v\n", lasso.Prefix)
				fmt.Printf("  cycle:  %v\n", lasso.Cycle)
			}
		}
		return fmt.Sprintf("ok=%v", wv.OK), nil
	})

	if exact {
		st.time("exact", func() (string, error) {
			chain, merr := markov.New(g)
			if merr != nil {
				fmt.Printf("exact analysis unavailable: %v\n", merr)
				return fmt.Sprintf("unavailable: %v", merr), nil
			}
			worst := chain.MaxExpected()
			fmt.Printf("exact E[interactions] worst-case start: %.3f\n", worst)
			zero := core.NewConfig(n, 0)
			if lp, ok := proto.(core.LeaderProtocol); ok {
				zero.Leader = lp.InitLeader()
			}
			if e, zerr := chain.ExpectedSteps(zero); zerr == nil {
				fmt.Printf("exact E[interactions] from all-zero start: %.3f\n", e)
			}
			return fmt.Sprintf("worst=%.3f", worst), nil
		})
	}

	if metrics {
		fmt.Println()
		st.dump(os.Stdout)
	}
	if st.sink != nil {
		return st.sink.Err()
	}
	return err
}

// buildStarts enumerates every mobile configuration; leader protocols
// get the initialized leader, or — with allLeaders, for Protocol 2 —
// every leader state in the declared domain.
func buildStarts(proto core.Protocol, n int, allLeaders bool) ([]*core.Config, error) {
	q := proto.States()
	total := 1
	for i := 0; i < n; i++ {
		total *= q
	}
	if total > 1<<20 {
		return nil, fmt.Errorf("start set of %d configurations too large", total)
	}
	var leaders []core.LeaderState
	switch lp := proto.(type) {
	case *naming.SelfStab:
		if allLeaders {
			for nn := 0; nn <= lp.P()+1; nn++ {
				for k := 0; k <= seq.Len(lp.P())+1; k++ {
					leaders = append(leaders, naming.ResetBST{N: nn, K: k})
				}
			}
		} else {
			leaders = append(leaders, lp.InitLeader())
		}
	case core.LeaderProtocol:
		if allLeaders {
			return nil, fmt.Errorf("-allleaders is only supported for the selfstab protocol")
		}
		leaders = append(leaders, lp.InitLeader())
	default:
		leaders = append(leaders, nil)
	}

	var out []*core.Config
	states := make([]core.State, n)
	for code := 0; code < total; code++ {
		c := code
		for i := range states {
			states[i] = core.State(c % q)
			c /= q
		}
		for _, l := range leaders {
			cfg := core.NewConfigStates(states...)
			if l != nil {
				cfg.Leader = l.Clone()
			}
			out = append(out, cfg)
		}
	}
	return out, nil
}
