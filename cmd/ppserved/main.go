// Command ppserved is the long-running simulation service: an HTTP
// server exposing the engine and experiment harness as a job queue
// with streaming NDJSON results and live metrics (see docs/service.md
// for the API).
//
// Usage:
//
//	ppserved -addr :8080 -workers 4 -queue 64
//	ppserved -addr 127.0.0.1:0 -journal service.jsonl -grace 30s
//
// Endpoints: POST /v1/jobs submits a job (kinds sim, batch, campaign,
// table1); GET /v1/jobs lists jobs; GET /v1/jobs/{id} shows one;
// GET /v1/jobs/{id}/results streams the result records; POST
// /v1/jobs/{id}/cancel cancels; GET /metrics renders the service and
// simulation metric tables (?format=prometheus for text exposition
// format 0.0.4); GET /healthz reports liveness; GET /readyz reports
// readiness (503 while draining or queue-saturated). -debug-addr
// mounts net/http/pprof on a separate listener for profiling.
//
// Shutdown: on SIGTERM or SIGINT the server stops admitting jobs
// (503), finishes the queued and running ones within -grace, then
// escalates to cooperative cancellation — partial results are
// streamed and journaled — flushes the journal and exits 0. A second
// signal cancels the grace period immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"popnaming/internal/obs"
	"popnaming/internal/serve"
	"popnaming/internal/serve/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 0, "job worker pool size (0: GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "job queue capacity (beyond it submissions get 429)")
		journal    = flag.String("journal", "", "write the service journal (JSONL job records) to this file")
		grace      = flag.Duration("grace", 30*time.Second, "drain grace period before in-flight jobs are canceled")
		debugAddr  = flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060); off when empty")
		storeKind  = flag.String("store", "memory", "job store: memory (jobs die with the process) or wal (durable; requires -store-dir)")
		storeDir   = flag.String("store-dir", "", "WAL store directory (created if absent; required with -store wal)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "result-cache byte budget; identical resubmissions are served from it (0 disables)")

		peers        = flag.String("peers", "", "comma-separated base URLs of peer ppserved nodes; untraced batch jobs shard across them (empty: standalone)")
		leaseTrials  = flag.Int("lease-trials", 0, "trials per lease when sharding batch jobs across peers (0: 64)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "ceiling on one lease attempt at a peer (0: 2m); the effective deadline adapts to observed batch wall times")
		distRetries  = flag.Int("dist-retries", 0, "peer re-issues per lease before it is pinned to local execution (0: 3; negative: first failure falls back local)")
	)
	flag.Parse()
	opts := distOptions{peers: *peers, leaseTrials: *leaseTrials, leaseTimeout: *leaseTimeout, retries: *distRetries}
	if err := run(*addr, *workers, *queue, *journal, *grace, *debugAddr, *storeKind, *storeDir, *cacheBytes, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ppserved:", err)
		os.Exit(1)
	}
}

// distOptions groups the sharded-execution flags.
type distOptions struct {
	peers        string
	leaseTrials  int
	leaseTimeout time.Duration
	retries      int
}

func run(addr string, workers, queue int, journal string, grace time.Duration, debugAddr, storeKind, storeDir string, cacheBytes int64, opts distOptions) error {
	cfg := serve.Config{Workers: workers, QueueCap: queue,
		LeaseTrials: opts.leaseTrials, LeaseTimeout: opts.leaseTimeout, DistRetries: opts.retries}
	if opts.peers != "" {
		for _, p := range strings.Split(opts.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	switch storeKind {
	case "memory":
		if storeDir != "" {
			return fmt.Errorf("-store-dir is only meaningful with -store wal")
		}
	case "wal":
		if storeDir == "" {
			return fmt.Errorf("-store wal requires -store-dir")
		}
		wal, err := store.OpenWAL(storeDir)
		if err != nil {
			return err
		}
		defer wal.Close()
		cfg.Store = wal
	default:
		return fmt.Errorf("unknown -store %q (memory | wal)", storeKind)
	}
	if cacheBytes <= 0 {
		cfg.CacheBytes = -1 // user asked for no cache; 0 means default
	} else {
		cfg.CacheBytes = cacheBytes
	}
	var closeJournal func() error
	if journal != "" {
		sink, closeFn, err := obs.OpenJournal(journal)
		if err != nil {
			return err
		}
		cfg.Sink = sink
		closeJournal = closeFn
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("ppserved: listening on %s (workers %d, queue %d, store %s)\n",
		ln.Addr(), effectiveWorkers(workers), queue, storeKind)
	if len(cfg.Peers) > 0 {
		fmt.Printf("ppserved: sharding batch jobs across %d peer(s): %s\n",
			len(cfg.Peers), strings.Join(cfg.Peers, ", "))
	}

	// The pprof listener is opt-in and separate from the service
	// listener, so profiling endpoints are never exposed on the
	// service address. It dies with the process; no drain needed.
	if debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Printf("ppserved: pprof on %s\n", dln.Addr())
		go func() { _ = http.Serve(dln, dmux) }()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Printf("ppserved: %v: draining (grace %v)\n", sig, grace)
	case err := <-serveErr:
		return err
	}

	// Drain with the grace period; a second signal cancels it. The
	// HTTP listener stays up during the drain so streaming clients
	// finish reading and late submissions get a clean 503.
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), grace)
	defer cancelGrace()
	go func() {
		<-sigs
		fmt.Println("ppserved: second signal: canceling in-flight jobs")
		cancelGrace()
	}()
	srv.Drain(graceCtx)

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	_ = httpSrv.Shutdown(shutdownCtx)

	if closeJournal != nil {
		if err := closeJournal(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	fmt.Println("ppserved: drained, exiting")
	return nil
}

// effectiveWorkers mirrors serve.New's worker default for the startup
// line.
func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
