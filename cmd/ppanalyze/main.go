// Command ppanalyze runs a campaign grid end to end: it expands a
// declarative JSON grid spec into cells (the protocol × engine ×
// population × scheduler × init × fault product), executes every cell
// — in-process by default, or against a running ppserved node with
// -server — and reduces the per-cell journals into convergence
// summaries: summary.{csv,txt,tex} plus per-cell convergence-CDF plots
// under plots/ (ASCII and SVG). See docs/pipeline.md.
//
//	ppanalyze -grid examples/grids/quickstart.json -out out/
//	ppanalyze -grid sweep.json -out out/ -server http://node:8080
//	ppanalyze -grid sweep.json -out out/ -resume
//
// A grid with a non-zero seed is byte-reproducible: cell seeds derive
// from (seed, cell index), and the artifacts carry no wall-clock
// values, so re-running the grid — locally, against a server, or
// resumed — rewrites identical artifacts. -resume skips cells whose
// journals under out/journals/ are already complete; -workers bounds
// concurrently running cells.
//
// The process exits 0 when every cell ran (or resumed) cleanly, 1 on
// cell failures (the summary still covers the successful cells) and 2
// on usage or spec errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"popnaming/internal/grid"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gridPath = flag.String("grid", "", "grid spec JSON file (required)")
		out      = flag.String("out", "", "campaign output directory (required)")
		server   = flag.String("server", "", "ppserved base URL; empty runs cells in-process")
		workers  = flag.Int("workers", 1, "cells to run concurrently")
		resume   = flag.Bool("resume", false, "skip cells whose journals are already complete")
		retries  = flag.Int("retries", 2, "resubmission attempts per cell in server mode")
		quiet    = flag.Bool("q", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()
	if *gridPath == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: ppanalyze -grid spec.json -out dir/ [-server URL] [-workers N] [-resume]")
		flag.PrintDefaults()
		return 2
	}
	f, err := os.Open(*gridPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppanalyze:", err)
		return 2
	}
	sp, err := grid.Parse(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppanalyze:", err)
		return 2
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ppanalyze:", err)
		return 2
	}
	if sp.SeedDerived {
		fmt.Fprintf(os.Stderr, "ppanalyze: seed auto-derived: %d (replay with \"seed\": %d)\n", sp.Seed, sp.Seed)
	}

	var runner grid.CellRunner = grid.LocalRunner{}
	if *server != "" {
		sr := grid.NewServerRunner(*server)
		sr.Retries = *retries
		runner = sr
	}
	cp := &grid.Campaign{
		Spec:    sp,
		Runner:  runner,
		Out:     *out,
		Workers: *workers,
		Resume:  *resume,
	}
	if !*quiet {
		cp.Log = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := cp.Execute(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppanalyze:", err)
		return 2
	}
	grid.SummaryTable(sp, res.Stats).Render(os.Stdout)
	fmt.Fprintf(os.Stderr, "ppanalyze: %d cells: %d ran, %d resumed, %d failed; artifacts in %s\n",
		len(res.Cells), res.Ran, res.Skipped, len(res.Failed), *out)
	if len(res.Failed) > 0 {
		for _, fe := range res.Failed {
			fmt.Fprintf(os.Stderr, "ppanalyze: cell %s: %v\n", fe.Cell.ID(), fe.Err)
		}
		return 1
	}
	return 0
}
