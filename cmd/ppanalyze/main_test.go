package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"popnaming/internal/grid"
)

// TestQuickstartGrid exercises the shipped starter spec end to end:
// it must parse strictly, validate against the service admission path,
// expand to the documented 8 cells, and run to completion with every
// artifact in place — so the example in docs/pipeline.md never rots.
func TestQuickstartGrid(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "examples", "grids", "quickstart.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sp, err := grid.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Name != "quickstart" || sp.Seed != 42 || sp.SeedDerived {
		t.Fatalf("spec not read faithfully: %+v", sp)
	}
	cells := sp.Cells()
	if len(cells) != 8 {
		t.Fatalf("quickstart expands to %d cells, want 8 (2 protocols x 2 populations x 2 fault plans)", len(cells))
	}
	out := t.TempDir()
	cp := &grid.Campaign{Spec: sp, Runner: grid.LocalRunner{}, Out: out, Workers: 2}
	res, err := cp.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) > 0 || res.Ran != 8 {
		t.Fatalf("ran %d, failed %v", res.Ran, res.Failed)
	}
	for _, p := range []string{"summary.csv", "summary.tex", "summary.txt",
		filepath.Join("plots", cells[0].ID()+".svg"),
		filepath.Join("journals", cells[7].ID()+".jsonl")} {
		if _, err := os.Stat(filepath.Join(out, p)); err != nil {
			t.Errorf("missing output: %v", err)
		}
	}
}
