package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"popnaming/internal/experiments"
	"popnaming/internal/obs"
)

// countOpts returns a flag set that the count engine accepts; tests
// mutate one field at a time to probe the rejection table.
func countOpts() options {
	return options{
		proto: "asym", p: 12, n: 10, sched: "random", init: "zero",
		engine: "count", sampler: "auto", budget: 1_000_000, seed: 7,
	}
}

func TestCountIncompatibility(t *testing.T) {
	if msg := countIncompatibility(countOpts()); msg != "" {
		t.Fatalf("baseline count options rejected: %s", msg)
	}
	cases := []struct {
		name   string
		mutate func(*options)
		want   string // substring of the rejection message
	}{
		{"adversary", func(o *options) { o.adv = true }, "-adversary"},
		{"faults", func(o *options) { o.faults = "@conv:corrupt=2" }, "-faults"},
		{"deadline", func(o *options) { o.deadline = 1 }, "supervised"},
		{"retries", func(o *options) { o.retries = 1 }, "supervised"},
		{"stall", func(o *options) { o.stall = 10 }, "supervised"},
		{"audit", func(o *options) { o.audit = true }, "-audit"},
		{"roundrobin", func(o *options) { o.sched = "roundrobin" }, "-sched roundrobin"},
		{"matching", func(o *options) { o.sched = "matching" }, "-sched matching"},
		{"eclipse", func(o *options) { o.sched = "eclipse" }, "-sched eclipse"},
		{"arbitrary", func(o *options) { o.init = "arbitrary" }, "-init arbitrary"},
		{"badsampler", func(o *options) { o.sampler = "vose" }, "-sampler vose"},
	}
	for _, c := range cases {
		o := countOpts()
		c.mutate(&o)
		msg := countIncompatibility(o)
		if msg == "" || !strings.Contains(msg, c.want) {
			t.Errorf("%s: countIncompatibility = %q, want mention of %q", c.name, msg, c.want)
		}
	}
	// uniform init and the explicit samplers stay accepted.
	for _, ok := range []func(*options){
		func(o *options) { o.init = "uniform" },
		func(o *options) { o.sampler = "fenwick" },
		func(o *options) { o.sampler = "alias" },
	} {
		o := countOpts()
		ok(&o)
		if msg := countIncompatibility(o); msg != "" {
			t.Errorf("compatible variation rejected: %s", msg)
		}
	}
}

func TestBuildCountConfig(t *testing.T) {
	spec, err := experiments.Lookup("initleader")
	if err != nil {
		t.Fatal(err)
	}
	pr := spec.New(6)
	cc, err := buildCountConfig(pr, 6, "zero")
	if err != nil {
		t.Fatal(err)
	}
	if cc.N() != 6 || cc.Counts[0] != 6 {
		t.Fatalf("zero init counts = %v", cc.Counts)
	}
	if cc.Leader == nil {
		t.Fatal("leader protocol start lost its leader")
	}
	if _, err := buildCountConfig(pr, 6, "uniform"); err != nil {
		t.Fatalf("uniform init: %v", err)
	}
	if _, err := buildCountConfig(pr, 6, "arbitrary"); err == nil {
		t.Fatal("arbitrary init must be rejected as not count-representable")
	}
}

// TestRunCountEveryProtocol drives the full namesim count path for every
// registry protocol, checking the journal carries the count-engine
// header and census records.
func TestRunCountEveryProtocol(t *testing.T) {
	for _, key := range experiments.RegistryKeys() {
		key := key
		t.Run(key, func(t *testing.T) {
			o := countOpts()
			o.proto = key
			if key == "ssle" {
				o.n = 12
			}
			o.journal = filepath.Join(t.TempDir(), "run.jsonl")
			o.progress = 1000
			if err := run(o); err != nil {
				t.Fatalf("run: %v", err)
			}
			f, err := os.Open(o.journal)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			if !sc.Scan() {
				t.Fatal("empty journal")
			}
			var hdr obs.Header
			if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
				t.Fatal(err)
			}
			if hdr.Engine != "count" || hdr.Scheduler != "random" {
				t.Fatalf("header engine=%q scheduler=%q", hdr.Engine, hdr.Scheduler)
			}
			census := 0
			for sc.Scan() {
				if strings.Contains(sc.Text(), `"type":"census"`) {
					census++
				}
			}
			if census == 0 {
				t.Fatal("journal has no census records")
			}
		})
	}
}

// TestRunCountLargeN pins the headline capability: the count path at a
// population the agent engine cannot represent, N far beyond P.
func TestRunCountLargeN(t *testing.T) {
	o := countOpts()
	o.n = 50_000_000
	o.budget = 200_000
	if err := run(o); err != nil {
		t.Fatalf("run at N=5e7: %v", err)
	}
}
