// Command namesim runs one naming-protocol execution and reports the
// outcome: final configuration, interaction counts, and (optionally) a
// fairness audit of the schedule that was played.
//
// Usage:
//
//	namesim -protocol asym -p 8 -n 8 -sched roundrobin -init zero
//	namesim -protocol selfstab -p 6 -n 6 -sched random -init arbitrary -audit
//	namesim -protocol symglobal -p 5 -n 4 -sched matching -budget 100000
//
// Protocols: asym, symglobal, initleader, selfstab, globalp, counting,
// naive (see -list).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"popnaming/internal/adversary"
	"popnaming/internal/core"
	"popnaming/internal/experiments"
	"popnaming/internal/fairness"
	"popnaming/internal/sched"
	"popnaming/internal/sim"
	"popnaming/internal/trace"
)

func main() {
	var (
		protoKey = flag.String("protocol", "asym", "protocol to run (see -list)")
		p        = flag.Int("p", 8, "population bound P")
		n        = flag.Int("n", 0, "population size N (default P)")
		schedKey = flag.String("sched", "random", "scheduler: random | roundrobin | matching | eclipse")
		initKey  = flag.String("init", "zero", "initialization: zero | uniform | arbitrary")
		seed     = flag.Int64("seed", 1, "random seed")
		budget   = flag.Int("budget", 50_000_000, "max interactions")
		audit    = flag.Bool("audit", false, "audit the played schedule for weak fairness")
		adv      = flag.Bool("adversary", false, "use the greedy anti-naming adversary (enforced weak fairness) instead of -sched")
		hidden   = flag.Int("hidden", 0, "eclipse scheduler: agent to hide")
		hide     = flag.Int("hide", 100000, "eclipse scheduler: steps to hide for")
		list     = flag.Bool("list", false, "list protocols and exit")
	)
	flag.Parse()

	if *list {
		for _, k := range experiments.RegistryKeys() {
			spec, _ := experiments.Lookup(k)
			fmt.Printf("%-12s %-7s %s\n", spec.Key, spec.Fairness, spec.Description)
		}
		return
	}
	if err := run(*protoKey, *p, *n, *schedKey, *initKey, *seed, *budget, *audit, *adv, *hidden, *hide); err != nil {
		fmt.Fprintln(os.Stderr, "namesim:", err)
		os.Exit(1)
	}
}

func run(protoKey string, p, n int, schedKey, initKey string, seed int64, budget int, audit, adv bool, hidden, hide int) error {
	spec, err := experiments.Lookup(protoKey)
	if err != nil {
		return err
	}
	if n == 0 {
		n = p
	}
	if n > p {
		return fmt.Errorf("population size %d exceeds bound P=%d", n, p)
	}
	proto := spec.New(p)

	cfg, err := buildConfig(proto, n, initKey, seed)
	if err != nil {
		return err
	}
	if adv {
		return runAdversarial(proto, cfg, n, initKey, budget, audit)
	}
	s, err := buildScheduler(proto, n, schedKey, seed, hidden, hide)
	if err != nil {
		return err
	}

	fmt.Printf("protocol %s (P=%d, %d states/agent, symmetric=%v, leader=%v)\n",
		proto.Name(), proto.P(), proto.States(), proto.Symmetric(), core.HasLeader(proto))
	fmt.Printf("population N=%d, scheduler %s, init %s, seed %d\n", n, s.Name(), initKey, seed)
	fmt.Printf("start: %s\n", cfg)

	runner := sim.NewRunner(proto, s, cfg)
	var col trace.Collector
	if audit {
		runner.OnStep = col.Record
	}
	res := runner.Run(budget)
	fmt.Printf("result: %s\n", res)
	fmt.Printf("valid naming: %v\n", cfg.ValidNaming())
	if res.Converged {
		fmt.Printf("parallel time: %.1f\n", res.ParallelTime(n))
	}
	if audit {
		a := fairness.AuditPairs(col.Pairs(), n, core.HasLeader(proto))
		fmt.Printf("%s\n", a)
	}
	return nil
}

// runAdversarial drives the execution with the greedy anti-naming
// adversary under mechanically enforced weak fairness.
func runAdversarial(proto core.Protocol, cfg *core.Config, n int, initKey string, budget int, audit bool) error {
	fmt.Printf("protocol %s (P=%d, %d states/agent), N=%d, greedy adversary, init %s\n",
		proto.Name(), proto.P(), proto.States(), n, initKey)
	fmt.Printf("start: %s\n", cfg)
	runner := adversary.NewRunner(proto, cfg, adversary.NewGreedyNaming(proto))
	var col trace.Collector
	if audit {
		runner.OnStep = col.Record
	}
	silent := runner.Run(budget)
	fmt.Printf("silent: %v after %d interactions (%d fairness-forced)\n",
		silent, runner.Steps(), runner.Forced())
	fmt.Printf("valid naming: %v\nfinal: %s\n", cfg.ValidNaming(), cfg)
	if audit {
		a := fairness.AuditPairs(col.Pairs(), n, core.HasLeader(proto))
		fmt.Printf("%s\n", a)
	}
	return nil
}

func buildConfig(proto core.Protocol, n int, initKey string, seed int64) (*core.Config, error) {
	switch initKey {
	case "zero":
		cfg := core.NewConfig(n, 0)
		if lp, ok := proto.(core.LeaderProtocol); ok {
			cfg.Leader = lp.InitLeader()
		}
		return cfg, nil
	case "uniform":
		return sim.UniformConfig(proto, n), nil
	case "arbitrary":
		ap, ok := proto.(core.ArbitraryInitProtocol)
		if !ok {
			return nil, fmt.Errorf("protocol %q does not support arbitrary initialization", proto.Name())
		}
		return sim.ArbitraryConfig(ap, n, rand.New(rand.NewSource(seed))), nil
	default:
		return nil, fmt.Errorf("unknown init %q (zero | uniform | arbitrary)", initKey)
	}
}

func buildScheduler(proto core.Protocol, n int, schedKey string, seed int64, hidden, hide int) (sched.Scheduler, error) {
	withLeader := core.HasLeader(proto)
	switch schedKey {
	case "random":
		return sched.NewRandom(n, withLeader, seed), nil
	case "roundrobin":
		return sched.NewRoundRobin(n, withLeader), nil
	case "matching":
		if withLeader {
			return nil, fmt.Errorf("matching scheduler is leaderless only")
		}
		return sched.NewMatching(n), nil
	case "eclipse":
		return sched.NewEclipse(n, withLeader, hidden, hide, seed), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (random | roundrobin | matching | eclipse)", schedKey)
	}
}
