// Command namesim runs one naming-protocol execution and reports the
// outcome: final configuration, interaction counts, and (optionally) a
// fairness audit of the schedule that was played.
//
// Usage:
//
//	namesim -protocol asym -p 8 -n 8 -sched roundrobin -init zero
//	namesim -protocol selfstab -p 6 -n 6 -sched random -init arbitrary -audit
//	namesim -protocol symglobal -p 5 -n 4 -sched matching -budget 100000
//	namesim -protocol asym -journal out.jsonl -metrics -progress-every 100000
//	namesim -protocol asym -engine interp -seed 7   # force interface dispatch
//	namesim -protocol selfstab -init arbitrary -faults '@conv:corrupt=3,@conv:corrupt=3'
//	namesim -protocol asym -faults '@5000:crash=1' -deadline 30s -retries 2
//	namesim -protocol asym -engine count -n 100000000 -budget 10000000
//
// -engine count selects the count-based (Gillespie) engine: the
// configuration is per-state counts, per-step cost is independent of N,
// and N may exceed P (naming is then unachievable by pigeonhole — the
// large-N scaling regime). The count engine knows no agent identities,
// so it is restricted to -sched random and -init zero|uniform, and the
// identity-dependent flags (-audit, -adversary, -faults, -deadline,
// -retries, -stall) are rejected at flag-parse time; -sampler picks the
// state sampler (auto | fenwick | alias).
//
// Fault injection (see docs/robustness.md): -faults takes a fault-plan
// string (events "@step:kind=arg" or "@conv:kind=arg"; kinds corrupt,
// leader, crash, churn, omit) executed mid-run by the supervised
// runner; -deadline, -retries and -stall bound the run's wall clock,
// stall retries and stall detection. Any of these flags selects the
// supervised path, which reports the trial status (ok | retried |
// aborted) alongside the result.
//
// Protocols: asym, symglobal, initleader, selfstab, globalp, counting,
// naive (see -list).
//
// Observability (see docs/observability.md): -journal writes a JSONL
// run journal (header, periodic progress snapshots, final summary with
// per-rule fire counts), -metrics prints the metrics tables after the
// run, -pprof captures CPU and heap profiles, and -seed 0 auto-derives
// a seed from the clock — the seed actually used is always printed and
// journaled so any run can be replayed exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"popnaming/internal/adversary"
	"popnaming/internal/core"
	"popnaming/internal/experiments"
	"popnaming/internal/fairness"
	"popnaming/internal/fault"
	"popnaming/internal/obs"
	"popnaming/internal/sched"
	"popnaming/internal/sim"
	"popnaming/internal/trace"
)

// options collects the parsed command line.
type options struct {
	proto    string
	p, n     int
	sched    string
	init     string
	engine   string
	sampler  string
	seed     int64
	derived  bool
	budget   int
	audit    bool
	adv      bool
	hidden   int
	hide     int
	faults   string
	plan     *fault.Plan
	deadline time.Duration
	retries  int
	stall    int
	journal  string
	metrics  bool
	progress int
	pprof    string
}

// supervised reports whether any fault/supervision flag selects the
// supervised execution path.
func (o *options) supervised() bool {
	return o.faults != "" || o.deadline > 0 || o.retries > 0 || o.stall > 0
}

func main() {
	var (
		protoKey = flag.String("protocol", "asym", "protocol to run (see -list)")
		p        = flag.Int("p", 8, "population bound P")
		n        = flag.Int("n", 0, "population size N (default P)")
		schedKey = flag.String("sched", "random", "scheduler: random | roundrobin | matching | eclipse")
		initKey  = flag.String("init", "zero", "initialization: zero | uniform | arbitrary")
		engine   = flag.String("engine", "compiled", "execution engine: compiled | interp | count")
		sampler  = flag.String("sampler", "auto", "count-engine state sampler: auto | fenwick | alias")
		seed     = flag.Int64("seed", 1, "random seed (0: auto-derive from the clock; the seed used is printed)")
		budget   = flag.Int("budget", 50_000_000, "max interactions")
		audit    = flag.Bool("audit", false, "audit the played schedule for weak fairness")
		adv      = flag.Bool("adversary", false, "use the greedy anti-naming adversary (enforced weak fairness) instead of -sched")
		hidden   = flag.Int("hidden", 0, "eclipse scheduler: agent to hide")
		hide     = flag.Int("hide", 100000, "eclipse scheduler: steps to hide for")
		faults   = flag.String("faults", "", "fault plan, e.g. '@5000:corrupt=3,@conv:crash=1' (see docs/robustness.md)")
		deadline = flag.Duration("deadline", 0, "wall-clock deadline for the supervised run (0: none)")
		retries  = flag.Int("retries", 0, "stall retries with derived seeds before aborting")
		stall    = flag.Int("stall", 0, "quiet-streak length declaring a stall (0: default when supervised)")
		list     = flag.Bool("list", false, "list protocols and exit")
		journal  = flag.String("journal", "", "write a JSONL run journal to this file (see docs/observability.md)")
		metrics  = flag.Bool("metrics", false, "print the run-metrics and rule-firing tables after the run")
		progress = flag.Int("progress-every", 1_000_000, "journal a progress snapshot every k interactions (0: final snapshot only)")
		pprofPfx = flag.String("pprof", "", "write CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()

	if *list {
		for _, k := range experiments.RegistryKeys() {
			spec, _ := experiments.Lookup(k)
			fmt.Printf("%-12s %-7s %s\n", spec.Key, spec.Fairness, spec.Description)
		}
		return
	}
	o := options{
		proto: *protoKey, p: *p, n: *n, sched: *schedKey, init: *initKey, engine: *engine,
		sampler: *sampler,
		budget:  *budget, audit: *audit, adv: *adv, hidden: *hidden, hide: *hide,
		faults: *faults, deadline: *deadline, retries: *retries, stall: *stall,
		journal: *journal, metrics: *metrics, progress: *progress, pprof: *pprofPfx,
	}
	o.seed, o.derived = obs.ResolveSeed(*seed)
	// Reject a malformed -faults plan at flag-parse time, before any
	// protocol or journal setup, with the parser's structured location.
	var perr error
	if o.plan, perr = fault.Parse(o.faults); perr != nil {
		var pe *fault.ParseError
		if errors.As(perr, &pe) {
			fmt.Fprintf(os.Stderr, "namesim: -faults: bad %s at offset %d: token %q: %s\n",
				pe.Kind, pe.Offset, pe.Token, pe.Reason)
		} else {
			fmt.Fprintln(os.Stderr, "namesim: -faults:", perr)
		}
		os.Exit(2)
	}
	// The count engine has no agent identities: reject identity-dependent
	// flag combinations here, before any protocol or journal setup, with
	// the incompatible feature named.
	if o.engine == "count" {
		if msg := countIncompatibility(o); msg != "" {
			fmt.Fprintf(os.Stderr, "namesim: -engine count: incompatible flag %s\n", msg)
			os.Exit(2)
		}
	} else if o.sampler != "auto" {
		fmt.Fprintln(os.Stderr, "namesim: -sampler requires -engine count")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "namesim:", err)
		os.Exit(1)
	}
}

// countIncompatibility returns a description of the first flag that the
// count engine cannot honor, or "" when the selection is count-runnable.
// The count engine sees per-state counts only; anything that addresses
// an individual agent has no meaning there.
func countIncompatibility(o options) string {
	switch {
	case o.adv:
		return "-adversary (the greedy adversary picks individual agents)"
	case o.faults != "":
		return "-faults (fault kinds target individual agents)"
	case o.supervised():
		return "-deadline/-retries/-stall (the supervised runner is agent-engine only)"
	case o.audit:
		return "-audit (a fairness audit needs the agent-level schedule)"
	case o.sched != "random":
		return "-sched " + o.sched + " (count dynamics are defined only for the uniform random scheduler)"
	case o.init == "arbitrary":
		return "-init arbitrary (arbitrary initialization draws an agent array)"
	case !sim.ValidCountSampler(o.sampler):
		return "-sampler " + o.sampler + " (want auto | fenwick | alias)"
	}
	return ""
}

func run(o options) (err error) {
	spec, err := experiments.Lookup(o.proto)
	if err != nil {
		return err
	}
	if o.n == 0 {
		o.n = o.p
	}
	// The agent engine needs one slot per agent, so N is bounded by P;
	// count dynamics are defined for any N (naming is then unachievable
	// when N > P, which is exactly the large-N scaling regime).
	if o.engine != "count" && o.n > o.p {
		return fmt.Errorf("population size %d exceeds bound P=%d", o.n, o.p)
	}
	proto := spec.New(o.p)

	var cfg *core.Config
	if o.engine != "count" {
		if cfg, err = buildConfig(proto, o.n, o.init, o.seed); err != nil {
			return err
		}
	}

	if o.pprof != "" {
		stop, perr := obs.StartPprof(o.pprof)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil {
				fmt.Fprintln(os.Stderr, "namesim: pprof:", serr)
			}
		}()
	}

	var sink *obs.JournalSink
	if o.journal != "" {
		s, closeFn, jerr := obs.OpenJournal(o.journal)
		if jerr != nil {
			return jerr
		}
		sink = s
		defer func() {
			if cerr := closeFn(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	if o.engine == "count" {
		return runCount(proto, o, sink)
	}
	if o.adv {
		if o.supervised() {
			return fmt.Errorf("-faults/-deadline/-retries/-stall cannot be combined with -adversary")
		}
		return runAdversarial(proto, cfg, o, sink)
	}
	if o.supervised() {
		return runSupervised(proto, o, sink)
	}
	s, err := buildScheduler(proto, o.n, o.sched, o.seed, o.hidden, o.hide)
	if err != nil {
		return err
	}

	fmt.Printf("protocol %s (P=%d, %d states/agent, symmetric=%v, leader=%v)\n",
		proto.Name(), proto.P(), proto.States(), proto.Symmetric(), core.HasLeader(proto))
	fmt.Printf("population N=%d, scheduler %s, init %s, seed %d%s\n",
		o.n, s.Name(), o.init, o.seed, seedNote(o.derived))
	fmt.Printf("start: %s\n", cfg)

	if sink != nil {
		hdr := header("namesim", proto, o)
		hdr.Scheduler = s.Name()
		if herr := sink.Emit(hdr); herr != nil {
			return herr
		}
	}

	runner := sim.NewRunner(proto, s, cfg)
	switch o.engine {
	case "compiled":
		// default: the runner compiles transparently when it can
	case "interp":
		runner.Interpret = true
	default:
		return fmt.Errorf("unknown engine %q (compiled | interp)", o.engine)
	}
	var observer *obs.Observer
	if sink != nil || o.metrics {
		observer = obs.NewObserver(o.n, core.HasLeader(proto), obs.ObserverOptions{
			Sink:          sink,
			ProgressEvery: o.progress,
		})
		runner.Obs = observer
	}
	var col trace.Collector
	if o.audit {
		runner.OnStep = col.Record
	}
	engine := "interpreted"
	if runner.Compiled() {
		engine = "compiled"
	}
	fmt.Printf("engine: %s\n", engine)
	res := runner.Run(o.budget)
	fmt.Printf("result: %s\n", res)
	fmt.Printf("valid naming: %v\n", cfg.ValidNaming())
	if res.Converged {
		fmt.Printf("parallel time: %.1f\n", res.ParallelTime(o.n))
	}
	if o.audit {
		a := fairness.AuditPairs(col.Pairs(), o.n, core.HasLeader(proto))
		fmt.Printf("%s\n", a)
	}
	if o.metrics {
		fmt.Println()
		observer.Dump(os.Stdout)
	}
	return err
}

// runSupervised drives a fault-injected run under the supervisor:
// the plan's events fire mid-run on the live runner (census resynced
// after every mutating fault), stalls are retried with derived seeds,
// and deadline/stall exhaustion yields a partial result tagged aborted
// instead of a hang.
func runSupervised(proto core.Protocol, o options, sink *obs.JournalSink) error {
	plan := o.plan // parsed (and rejected if malformed) at flag-parse time
	// Validate plan capabilities and the init/scheduler keys once, so
	// the per-attempt builder below cannot fail.
	if _, err := fault.NewInjector(plan, proto, o.seed); err != nil {
		return err
	}
	if _, err := buildConfig(proto, o.n, o.init, o.seed); err != nil {
		return err
	}
	s0, err := buildScheduler(proto, o.n, o.sched, o.seed, o.hidden, o.hide)
	if err != nil {
		return err
	}
	if o.engine != "compiled" && o.engine != "interp" {
		return fmt.Errorf("unknown engine %q (compiled | interp)", o.engine)
	}

	fmt.Printf("protocol %s (P=%d, %d states/agent, symmetric=%v, leader=%v)\n",
		proto.Name(), proto.P(), proto.States(), proto.Symmetric(), core.HasLeader(proto))
	fmt.Printf("population N=%d, scheduler %s, init %s, seed %d%s\n",
		o.n, s0.Name(), o.init, o.seed, seedNote(o.derived))
	fmt.Printf("supervised: plan %q, deadline %v, retries %d\n", plan.String(), o.deadline, o.retries)
	if sink != nil {
		hdr := header("namesim", proto, o)
		hdr.Scheduler = s0.Name()
		if herr := sink.Emit(hdr); herr != nil {
			return herr
		}
	}

	sup := sim.Supervision{
		StepBudget: o.budget,
		Deadline:   o.deadline,
		StallQuiet: o.stall,
		Retries:    o.retries,
	}
	if sup.StallQuiet == 0 {
		// Retries and deadlines only help if stalls are detected:
		// default to a large multiple of the silence-check window.
		w := 4 * o.n * o.n
		if w < 64 {
			w = 64
		}
		sup.StallQuiet = 2048 * w
	}
	if sink != nil {
		sup.Sink = sink
	}
	var inj *fault.Injector
	var observer *obs.Observer
	var finalCfg *core.Config
	var col *trace.Collector
	sr := sim.Supervise(context.Background(), sup, func(attempt int) *sim.Runner {
		seed := o.seed
		if attempt > 0 {
			seed = sim.DeriveSeed(o.seed, 0, attempt)
			fmt.Printf("retry %d: derived seed %d\n", attempt, seed)
		}
		cfg, _ := buildConfig(proto, o.n, o.init, seed)
		finalCfg = cfg
		s, _ := buildScheduler(proto, o.n, o.sched, seed, o.hidden, o.hide)
		runner := sim.NewRunner(proto, s, cfg)
		runner.Interpret = o.engine == "interp"
		inj, _ = fault.NewInjector(plan, proto, seed)
		if sink != nil {
			inj.Sink = sink
		}
		runner.Inject = inj
		if sink != nil || o.metrics {
			observer = obs.NewObserver(o.n, core.HasLeader(proto), obs.ObserverOptions{
				Sink:          sink,
				ProgressEvery: o.progress,
			})
			runner.Obs = observer
		}
		if o.audit {
			col = &trace.Collector{}
			runner.OnStep = col.Record
		}
		return runner
	})

	fmt.Printf("status: %s (attempts %d", sr.Status, sr.Attempts)
	if sr.Reason != "" {
		fmt.Printf(", reason %s", sr.Reason)
	}
	fmt.Printf(", wall %v)\n", time.Duration(sr.WallNS).Round(time.Millisecond))
	for _, f := range inj.Fired() {
		fmt.Printf("fault: %s fired at step %d\n", f.Event, f.Step)
	}
	if got, want := len(inj.Fired()), len(plan.Events); got < want {
		fmt.Printf("faults pending: %d of %d events never fired\n", want-got, want)
	}
	fmt.Printf("result: %s\n", sr.Result)
	fmt.Printf("valid naming: %v\n", finalCfg.ValidNaming())
	if sr.Converged {
		fmt.Printf("parallel time: %.1f\n", sr.ParallelTime(o.n))
	}
	if o.audit {
		a := fairness.AuditPairs(col.Pairs(), o.n, core.HasLeader(proto))
		fmt.Printf("%s\n", a)
	}
	if o.metrics {
		fmt.Println()
		observer.Dump(os.Stdout)
	}
	return nil
}

// runAdversarial drives the execution with the greedy anti-naming
// adversary under mechanically enforced weak fairness. The adversarial
// runner only exposes pair events, so journals and metrics from this
// path carry no per-rule fire counts.
func runAdversarial(proto core.Protocol, cfg *core.Config, o options, sink *obs.JournalSink) error {
	fmt.Printf("protocol %s (P=%d, %d states/agent), N=%d, greedy adversary, init %s, seed %d%s\n",
		proto.Name(), proto.P(), proto.States(), o.n, o.init, o.seed, seedNote(o.derived))
	fmt.Printf("start: %s\n", cfg)
	if sink != nil {
		hdr := header("namesim", proto, o)
		hdr.Scheduler = "greedy-adversary"
		if err := sink.Emit(hdr); err != nil {
			return err
		}
	}
	runner := adversary.NewRunner(proto, cfg, adversary.NewGreedyNaming(proto))
	var observer *obs.Observer
	if sink != nil || o.metrics {
		observer = obs.NewObserver(o.n, core.HasLeader(proto), obs.ObserverOptions{
			Sink:          sink,
			ProgressEvery: o.progress,
		})
	}
	var col trace.Collector
	runner.OnStep = func(e trace.Event) {
		if o.audit {
			col.Record(e)
		}
		if observer != nil {
			observer.ObservePair(e.Pair, e.NonNull)
		}
	}
	silent := runner.Run(o.budget)
	if observer != nil {
		// Surface the enforced-fairness count in the summary record so
		// adversarial runs are auditable like scheduler runs.
		observer.SetForced(int64(runner.Forced()))
		observer.Finish(silent)
	}
	fmt.Printf("silent: %v after %d interactions (%d fairness-forced)\n",
		silent, runner.Steps(), runner.Forced())
	fmt.Printf("valid naming: %v\nfinal: %s\n", cfg.ValidNaming(), cfg)
	if o.audit {
		a := fairness.AuditPairs(col.Pairs(), o.n, core.HasLeader(proto))
		fmt.Printf("%s\n", a)
	}
	if o.metrics {
		fmt.Println()
		observer.Dump(os.Stdout)
	}
	return nil
}

// runCount drives the count-based engine: the configuration is
// per-state counts (core.CountConfig), the pair law is the uniform
// random scheduler's, and the per-step cost is independent of N.
// Journals from this path carry engine:"count", census records instead
// of pair statistics, and the same per-rule fire counts as agent runs.
func runCount(proto core.Protocol, o options, sink *obs.JournalSink) error {
	cc, err := buildCountConfig(proto, o.n, o.init)
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s (P=%d, %d states/agent, symmetric=%v, leader=%v)\n",
		proto.Name(), proto.P(), proto.States(), proto.Symmetric(), core.HasLeader(proto))
	fmt.Printf("population N=%d, engine count (sampler %s), init %s, seed %d%s\n",
		o.n, o.sampler, o.init, o.seed, seedNote(o.derived))
	fmt.Printf("start: %s\n", cc)
	if sink != nil {
		hdr := header("namesim", proto, o)
		hdr.Engine = "count"
		hdr.Scheduler = "random"
		if herr := sink.Emit(hdr); herr != nil {
			return herr
		}
	}
	runner, err := sim.NewCountRunner(proto, cc, o.seed)
	if err != nil {
		return err
	}
	runner.Sampler = o.sampler
	var observer *obs.Observer
	if sink != nil || o.metrics {
		observer = obs.NewObserver(o.n, core.HasLeader(proto), obs.ObserverOptions{
			Sink:          sink,
			ProgressEvery: o.progress,
			NoPairs:       true,
		})
		runner.Obs = observer
	}
	res, err := runner.Run(o.budget)
	if err != nil {
		return err
	}
	fmt.Printf("result: %s\n", res)
	fmt.Printf("valid naming: %v\n", cc.ValidNaming())
	if res.Converged {
		fmt.Printf("parallel time: %.1f\n", res.ParallelTime(o.n))
	}
	if o.metrics {
		fmt.Println()
		observer.Dump(os.Stdout)
	}
	return nil
}

// buildCountConfig builds the starting counts for the count engine.
// Only the identity-free initializations are representable: all-zero
// and the protocol's uniform start ("arbitrary" draws an agent array).
func buildCountConfig(proto core.Protocol, n int, initKey string) (*core.CountConfig, error) {
	switch initKey {
	case "zero":
		cc := core.NewCountConfig(proto.States())
		cc.Counts[0] = n
		if lp, ok := proto.(core.LeaderProtocol); ok {
			cc.Leader = lp.InitLeader()
		}
		return cc, nil
	case "uniform":
		return sim.UniformCountConfig(proto, n), nil
	default:
		return nil, fmt.Errorf("init %q is not count-representable (zero | uniform)", initKey)
	}
}

func header(tool string, proto core.Protocol, o options) obs.Header {
	hdr := obs.NewHeader(tool)
	hdr.Protocol = proto.Name()
	hdr.P = proto.P()
	hdr.States = proto.States()
	hdr.Leader = core.HasLeader(proto)
	hdr.N = o.n
	hdr.Init = o.init
	hdr.Budget = o.budget
	hdr.Seed = o.seed
	hdr.SeedDerived = o.derived
	return hdr
}

func seedNote(derived bool) string {
	if derived {
		return " (auto-derived)"
	}
	return ""
}

func buildConfig(proto core.Protocol, n int, initKey string, seed int64) (*core.Config, error) {
	switch initKey {
	case "zero":
		cfg := core.NewConfig(n, 0)
		if lp, ok := proto.(core.LeaderProtocol); ok {
			cfg.Leader = lp.InitLeader()
		}
		return cfg, nil
	case "uniform":
		return sim.UniformConfig(proto, n), nil
	case "arbitrary":
		ap, ok := proto.(core.ArbitraryInitProtocol)
		if !ok {
			return nil, fmt.Errorf("protocol %q does not support arbitrary initialization", proto.Name())
		}
		return sim.ArbitraryConfig(ap, n, rand.New(rand.NewSource(seed))), nil
	default:
		return nil, fmt.Errorf("unknown init %q (zero | uniform | arbitrary)", initKey)
	}
}

func buildScheduler(proto core.Protocol, n int, schedKey string, seed int64, hidden, hide int) (sched.Scheduler, error) {
	withLeader := core.HasLeader(proto)
	switch schedKey {
	case "random":
		return sched.NewRandom(n, withLeader, seed), nil
	case "roundrobin":
		return sched.NewRoundRobin(n, withLeader), nil
	case "matching":
		if withLeader {
			return nil, fmt.Errorf("matching scheduler is leaderless only")
		}
		return sched.NewMatching(n), nil
	case "eclipse":
		return sched.NewEclipse(n, withLeader, hidden, hide, seed), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (random | roundrobin | matching | eclipse)", schedKey)
	}
}
