// Package popnaming's root benchmark harness regenerates every
// experiment of the paper reproduction (see DESIGN.md's experiment index
// E1-E14 and EXPERIMENTS.md for recorded outcomes). Each benchmark's
// reported ns/op is the cost of one full experiment run; benchmarks that
// reproduce convergence-cost figures additionally report
// interactions/op, the paper-relevant metric.
//
// Run everything:
//
//	go test -bench=. -benchmem
package popnaming

import (
	"fmt"
	"math/rand"
	"testing"

	"popnaming/internal/core"
	"popnaming/internal/counting"
	"popnaming/internal/experiments"
	"popnaming/internal/explore"
	"popnaming/internal/impossible"
	"popnaming/internal/naming"
	"popnaming/internal/sched"
	"popnaming/internal/search"
	"popnaming/internal/sim"
)

// benchConverge runs one protocol instance to convergence per iteration
// and reports interactions/op.
func benchConverge(b *testing.B, mk func(seed int64) (*sim.Runner, *core.Config)) {
	b.Helper()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		run, cfg := mk(int64(i))
		res := run.Run(200_000_000)
		if !res.Converged {
			b.Fatalf("did not converge: %s", res)
		}
		if !cfg.ValidNaming() {
			b.Fatalf("invalid naming: %s", cfg)
		}
		totalSteps += res.Steps
	}
	b.ReportMetric(float64(totalSteps)/float64(b.N), "interactions/op")
}

// BenchmarkE01Table1 regenerates the paper's Table 1 (all nine cells,
// simulation + model checks + exhaustive search).
func BenchmarkE01Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Table1(experiments.Table1Options{
			P: 5, ModelCheckP: 3, Budget: 10_000_000, Seed: int64(i),
		})
		for _, c := range cells {
			if !c.OK {
				b.Fatalf("cell (%s, %s) disagrees", c.Leader, c.Rules)
			}
		}
	}
}

// BenchmarkE02Asymmetric: Prop 12 protocol, arbitrary init, weakly fair
// round-robin, leaderless.
func BenchmarkE02Asymmetric(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewAsymmetric(n)
			benchConverge(b, func(seed int64) (*sim.Runner, *core.Config) {
				cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(seed)))
				return sim.NewRunner(pr, sched.NewRoundRobin(n, false), cfg), cfg
			})
		})
	}
}

// BenchmarkE03SymGlobal: Prop 13 protocol, arbitrary init, random
// (globally fair) scheduling, leaderless, N > 2.
func BenchmarkE03SymGlobal(b *testing.B) {
	// Tight instances (N = P): the blank-state walk must land on an
	// exact permutation, so cost grows steeply with N (see the slack
	// experiment E15 in EXPERIMENTS.md).
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewSymGlobal(n)
			benchConverge(b, func(seed int64) (*sim.Runner, *core.Config) {
				cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(seed)))
				return sim.NewRunner(pr, sched.NewRandom(n, false, seed), cfg), cfg
			})
		})
	}
}

// BenchmarkE04InitLeader: Prop 14 protocol, uniform init, weakly fair.
func BenchmarkE04InitLeader(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewInitLeader(n)
			benchConverge(b, func(seed int64) (*sim.Runner, *core.Config) {
				cfg := sim.UniformConfig(pr, n)
				return sim.NewRunner(pr, sched.NewRandom(n, true, seed), cfg), cfg
			})
		})
	}
}

// BenchmarkE05Counting: Protocol 1 counting N < P agents from arbitrary
// states (Theorem 15), weakly fair.
func BenchmarkE05Counting(b *testing.B) {
	// The U* pointer walk makes convergence cost grow like 2^N (see
	// EXPERIMENTS.md): space optimality is paid for in time.
	for _, n := range []int{7, 11, 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := counting.New(n + 1)
			totalSteps := 0
			for i := 0; i < b.N; i++ {
				cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(int64(i))))
				res := sim.NewRunner(pr, sched.NewRoundRobin(n, true), cfg).Run(200_000_000)
				if !res.Converged || pr.Count(cfg) != n {
					b.Fatalf("bad count: %s", res)
				}
				totalSteps += res.Steps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkE06SelfStab: Protocol 2, arbitrary leader AND mobile states,
// weakly fair (Prop 16).
func BenchmarkE06SelfStab(b *testing.B) {
	// Exponential-in-N convergence cost, like Protocol 1 (same walk).
	for _, n := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewSelfStab(n)
			benchConverge(b, func(seed int64) (*sim.Runner, *core.Config) {
				cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(seed)))
				return sim.NewRunner(pr, sched.NewRoundRobin(n, true), cfg), cfg
			})
		})
	}
}

// BenchmarkE07GlobalPFull: Protocol 3 at N = P under random scheduling
// (Prop 17). The cost explodes with P — the quantitative face of "this
// cell needs global fairness".
func BenchmarkE07GlobalPFull(b *testing.B) {
	for _, p := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("P=N=%d", p), func(b *testing.B) {
			pr := naming.NewGlobalP(p)
			benchConverge(b, func(seed int64) (*sim.Runner, *core.Config) {
				cfg := sim.ArbitraryConfig(pr, p, rand.New(rand.NewSource(seed)))
				return sim.NewRunner(pr, sched.NewRandom(p, true, seed), cfg), cfg
			})
		})
	}
}

// BenchmarkE08Prop1Lockstep: the Proposition 1 adversary holding a
// symmetric leaderless protocol in lockstep across full weakly fair
// pair-covering cycles.
func BenchmarkE08Prop1Lockstep(b *testing.B) {
	pr := naming.NewSymGlobal(8)
	for i := 0; i < b.N; i++ {
		rep := impossible.Lockstep(pr, 8, 0, 50)
		if !rep.AlwaysUniform || rep.Final.ValidNaming() {
			b.Fatalf("adversary failed: %s", rep)
		}
	}
}

// BenchmarkE09Prop2Search: exhaustive search over all symmetric
// leaderless protocols (Prop 2 lower bound).
func BenchmarkE09Prop2Search(b *testing.B) {
	b.Run("q=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := search.SymmetricNaming(2, []int{2}, search.Weak, search.BestUniform); len(r.Survivors) != 0 {
				b.Fatal("unexpected survivor")
			}
		}
	})
	b.Run("q=3-arbitrary-global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := search.SymmetricNaming(3, []int{3}, search.Global, search.Arbitrary); len(r.Survivors) != 0 {
				b.Fatal("unexpected survivor")
			}
		}
	})
}

// BenchmarkE10Thm11Eclipse: the hidden-agent construction stranding the
// P-state substrate at N = P.
func BenchmarkE10Thm11Eclipse(b *testing.B) {
	const p = 5
	pr := counting.New(p)
	visible := make([]core.State, p-1)
	for i := 0; i < b.N; i++ {
		stuck := false
		for seed := int64(0); seed < 12 && !stuck; seed++ {
			rep := impossible.Eclipse(pr, visible, 0, 1, seed+int64(i)*100, 4_000_000)
			stuck = rep.StuckSilent
		}
		if !stuck {
			b.Fatal("Theorem 11 phenomenon not reproduced")
		}
	}
}

// BenchmarkE11FairnessSeparation: exhaustive weak-vs-global separation
// on Protocol 3 at N = P = 3, including lasso extraction and replay.
func BenchmarkE11FairnessSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.FairnessSeparation(3, int64(i))
		if !res.GlobalConverges || !res.WeakFails || !res.ReplayNonConverging {
			b.Fatalf("separation failed: %+v", res)
		}
	}
}

// BenchmarkE12Sweep: one full convergence-cost curve (the figure-style
// E12 extension) per iteration, small sizes.
func BenchmarkE12Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Sweep("asym", func(p int) core.Protocol { return naming.NewAsymmetric(p) },
			experiments.SweepOptions{Sizes: []int{4, 8, 16}, Trials: 5, Seed: int64(i)})
		for _, pt := range s.Points {
			if pt.Failures > 0 {
				b.Fatalf("sweep failure at N=%d", pt.N)
			}
		}
	}
}

// BenchmarkE13Recovery: corruption/re-convergence for Protocol 2.
func BenchmarkE13Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Recovery("selfstab", naming.NewSelfStab(8), experiments.RecoveryOptions{
			N: 8, Trials: 3, Budget: 20_000_000, CorruptLeader: true, Seed: int64(i),
		})
		for _, pt := range res.Points {
			if pt.Failures > 0 {
				b.Fatalf("recovery failure at k=%d", pt.Corrupted)
			}
		}
	}
}

// BenchmarkE14UStarAblation: exhaustive U*-vs-naive counting check.
func BenchmarkE14UStarAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.UStarAblation(3)
		if !res.UStarOK || res.NaiveOK {
			b.Fatalf("ablation outcome changed: %+v", res)
		}
	}
}

// --- Engine microbenchmarks -------------------------------------------

// BenchmarkStepThroughput measures raw interactions per second of the
// simulation engine (Protocol 2, N = 64) through the default compiled
// path: batched scheduler draw, transition-table lookup, census update.
func BenchmarkStepThroughput(b *testing.B) {
	const n = 64
	pr := naming.NewSelfStab(n)
	cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(1)))
	run := sim.NewRunner(pr, sched.NewRandom(n, true, 1), cfg)
	if !run.Compiled() {
		b.Fatal("compiled engine unavailable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Step()
	}
}

// BenchmarkStepThroughputInterp is BenchmarkStepThroughput forced onto
// the interface-dispatch path, preserving the pre-compilation baseline
// for before/after comparison.
func BenchmarkStepThroughputInterp(b *testing.B) {
	const n = 64
	pr := naming.NewSelfStab(n)
	cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(1)))
	run := sim.NewRunner(pr, sched.NewRandom(n, true, 1), cfg)
	run.Interpret = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Step()
	}
}

// BenchmarkRunConverge measures one full convergence through the fused
// Run loop and reports interactions/op. It uses Prop 12 (asymmetric
// naming, polynomial convergence) at N = 32 — the BST-based protocols
// converge in time exponential in N and are benchmarked at small N by
// the experiment benchmarks instead.
func BenchmarkRunConverge(b *testing.B) {
	const n = 32
	pr := naming.NewAsymmetric(n)
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		cfg := sim.ArbitraryConfig(pr, n, rand.New(rand.NewSource(int64(i))))
		res := sim.NewRunner(pr, sched.NewRandom(n, false, int64(i)), cfg).Run(200_000_000)
		if !res.Converged {
			b.Fatalf("did not converge: %s", res)
		}
		totalSteps += res.Steps
	}
	b.ReportMetric(float64(totalSteps)/float64(b.N), "interactions/op")
}

// BenchmarkSilenceCheck measures the terminal-configuration test as the
// runner performs it: the census/activePairs counter check of the
// compiled engine (O(1) on the mobile side) on an already-named
// population. BenchmarkSilenceCheckInterp keeps the O(n²) interface
// scan it replaced.
func BenchmarkSilenceCheck(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewAsymmetric(n)
			cfg := core.NewConfig(n, 0)
			for i := range cfg.Mobile {
				cfg.Mobile[i] = core.State(i)
			}
			run := sim.NewRunner(pr, sched.NewRandom(n, false, 1), cfg)
			if !run.Compiled() {
				b.Fatal("compiled engine unavailable")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !run.Silent() {
					b.Fatal("should be silent")
				}
			}
		})
	}
}

// BenchmarkSilenceCheckInterp measures the O(n²) interface-dispatch
// terminal-configuration scan (the pre-census baseline).
func BenchmarkSilenceCheckInterp(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pr := naming.NewAsymmetric(n)
			cfg := core.NewConfig(n, 0)
			for i := range cfg.Mobile {
				cfg.Mobile[i] = core.State(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !core.Silent(pr, cfg) {
					b.Fatal("should be silent")
				}
			}
		})
	}
}

// BenchmarkGraphBuild measures model-checker state-space construction
// (Protocol 3 at P = N = 3, all starts).
func BenchmarkGraphBuild(b *testing.B) {
	pr := naming.NewGlobalP(3)
	var starts []*core.Config
	for a := 0; a < 3; a++ {
		for bb := 0; bb < 3; bb++ {
			for c := 0; c < 3; c++ {
				starts = append(starts,
					core.NewConfigStates(core.State(a), core.State(bb), core.State(c)).
						WithLeader(pr.InitLeader()))
			}
		}
	}
	for i := 0; i < b.N; i++ {
		g, err := explore.Build(pr, starts, explore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if v := g.CheckGlobal(explore.Naming); !v.OK {
			b.Fatal(v)
		}
	}
}

// BenchmarkE15Slack: time price of exact space optimality — fixed N,
// growing state budget P.
func BenchmarkE15Slack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Slack("symglobal", func(p int) core.Protocol { return naming.NewSymGlobal(p) },
			experiments.SlackOptions{N: 6, MaxSlack: 4, Trials: 3, Seed: int64(i)})
		for _, pt := range res.Points {
			if pt.Failures > 0 {
				b.Fatalf("slack run failed at P=%d", pt.P)
			}
		}
	}
}

// BenchmarkE16ResetAblation: exhaustive check of Protocol 2's reset line.
func BenchmarkE16ResetAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ResetAblation(2)
		if !res.WithResetOK || !res.NoResetInitializedOK || res.NoResetArbitraryOK {
			b.Fatalf("ablation outcome changed: %+v", res)
		}
	}
}

// BenchmarkE17ExactTimes: exact expected convergence times via the
// absorbing-chain solve (full reachability graph + dense Gaussian
// elimination per instance).
func BenchmarkE17ExactTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.ExactTimes() {
			if p.Err != "" {
				b.Fatalf("%s: %s", p.Protocol, p.Err)
			}
		}
	}
}

// BenchmarkBatchThroughput measures the concurrent batch runner
// (Protocol 2, N = 16, one full convergence per trial, all cores).
func BenchmarkBatchThroughput(b *testing.B) {
	const n = 12
	pr := naming.NewSelfStab(n)
	for i := 0; i < b.N; i++ {
		results := sim.RunBatch(pr, 16, 100_000_000, 0, func(trial int) sim.Trial {
			r := rand.New(rand.NewSource(int64(i*100 + trial)))
			return sim.Trial{
				Cfg:   sim.ArbitraryConfig(pr, n, r),
				Sched: sched.NewRandom(n, true, int64(i*100+trial)),
			}
		})
		for _, br := range results {
			if !br.Result.Converged {
				b.Fatal("batch trial did not converge")
			}
		}
	}
}

// BenchmarkE18Thm11Scaling: one adversarial defeat + one adversarial
// convergence at P = 4 per iteration.
func BenchmarkE18Thm11Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Thm11Scaling(4, 200_000, int64(i))
		for _, p := range points {
			if !p.GlobalPDefeated || p.SelfStabSteps == 0 {
				b.Fatalf("outcome changed at P=%d", p.P)
			}
		}
	}
}

// BenchmarkE20Distributions: exact convergence-time laws plus
// simulation cross-validation.
func BenchmarkE20Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.Distributions(500, int64(i)) {
			if p.Err != "" {
				b.Fatalf("%s: %s", p.Protocol, p.Err)
			}
		}
	}
}

// BenchmarkE21OracleSchedules: the constructive proof schedules for the
// tight instances, including N = P = 16.
func BenchmarkE21OracleSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.OracleSchedules(int64(i)) {
			if !p.OK {
				b.Fatalf("%s P=%d failed", p.Protocol, p.P)
			}
		}
	}
}

// BenchmarkE22Stabilize: one multi-epoch fault-injection campaign
// (Protocol 2, N = 8, three convergence-triggered 2-corruptions, three
// supervised trials) per iteration, reporting total interactions/op
// across all epochs.
func BenchmarkE22Stabilize(b *testing.B) {
	pr := naming.NewSelfStab(8)
	var totalSteps int64
	for i := 0; i < b.N; i++ {
		res := experiments.Stabilize("selfstab", pr, experiments.StabilizeOptions{
			N: 8, Epochs: 3, Trials: 3, Workers: 1, Seed: int64(i),
		})
		if !res.OK {
			b.Fatalf("stabilization failed: %+v", res)
		}
		for _, e := range res.Epochs {
			totalSteps += int64(e.MedianSteps) * int64(e.Trials)
		}
	}
	b.ReportMetric(float64(totalSteps)/float64(b.N), "interactions/op")
}
